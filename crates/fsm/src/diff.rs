//! Structural diff between two protocol FSMs.
//!
//! Comparing the FSM extracted from an implementation against the one
//! extracted from a conformant reference shows the implementation's
//! behavioural deviation *directly*: every added transition is behaviour
//! the reference does not exhibit (the I-series bugs appear here as
//! replay/plaintext acceptance transitions), and every removed one is a
//! check the implementation performs that the other lacks.

use crate::{Fsm, Transition};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Difference between two FSMs over the same vocabulary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FsmDiff {
    /// Transitions present in `right` but not in `left`.
    pub added: Vec<Transition>,
    /// Transitions present in `left` but not in `right`.
    pub removed: Vec<Transition>,
    /// States only in `right`.
    pub added_states: Vec<String>,
    /// States only in `left`.
    pub removed_states: Vec<String>,
}

impl FsmDiff {
    /// True if the two machines are structurally identical.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty()
            && self.removed.is_empty()
            && self.added_states.is_empty()
            && self.removed_states.is_empty()
    }

    /// Renders the diff in unified-diff spirit (`+`/`-` lines).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.removed_states {
            out.push_str(&format!("- state {s}\n"));
        }
        for s in &self.added_states {
            out.push_str(&format!("+ state {s}\n"));
        }
        for t in &self.removed {
            out.push_str(&format!("- {t}\n"));
        }
        for t in &self.added {
            out.push_str(&format!("+ {t}\n"));
        }
        out
    }
}

/// Computes the structural diff `right − left` / `left − right`.
///
/// Each side is indexed into a hash set once, so the comparison is
/// linear in the total transition count — this sits on the warm-path
/// hot loop (every incremental re-check diffs the fresh FSM against the
/// stored baseline) where the old per-transition scan was quadratic.
/// Output order is unchanged: each diff vector lists survivors in the
/// source machine's insertion order, never hash order.
pub fn diff(left: &Fsm, right: &Fsm) -> FsmDiff {
    let left_transitions: HashSet<&Transition> = left.transitions().collect();
    let right_transitions: HashSet<&Transition> = right.transitions().collect();
    let added = right
        .transitions()
        .filter(|t| !left_transitions.contains(*t))
        .cloned()
        .collect();
    let removed = left
        .transitions()
        .filter(|t| !right_transitions.contains(*t))
        .cloned()
        .collect();
    let left_states: HashSet<_> = left.states().collect();
    let right_states: HashSet<_> = right.states().collect();
    let added_states = right
        .states()
        .filter(|s| !left_states.contains(s))
        .map(|s| s.as_str().to_string())
        .collect();
    let removed_states = left
        .states()
        .filter(|s| !right_states.contains(s))
        .map(|s| s.as_str().to_string())
        .collect();
    FsmDiff {
        added,
        removed,
        added_states,
        removed_states,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Fsm {
        let mut f = Fsm::new("a");
        f.set_initial("s0");
        f.add_transition(Transition::build("s0", "s1").when("m").then("r"));
        f
    }

    #[test]
    fn identical_fsms_diff_empty() {
        let d = diff(&base(), &base());
        assert!(d.is_empty());
        assert_eq!(d.render(), "");
    }

    #[test]
    fn added_transition_detected() {
        let mut right = base();
        right.add_transition(Transition::build("s1", "s1").when("n").when("x=1"));
        let d = diff(&base(), &right);
        assert_eq!(d.added.len(), 1);
        assert!(d.removed.is_empty());
        assert!(d.render().contains("+ s1 -> s1 [n & x=1 / ]"));
    }

    #[test]
    fn removed_state_detected() {
        let mut left = base();
        left.add_state("orphan");
        let d = diff(&left, &base());
        assert_eq!(d.removed_states, vec!["orphan".to_string()]);
        assert!(d.render().contains("- state orphan"));
    }

    /// Output order is the source machines' insertion order — pinned
    /// because the warm path hashes the rendered diff and lowers it to
    /// command sets, so a hash-order leak would make re-check decisions
    /// (and telemetry) run-dependent.
    #[test]
    fn diff_output_is_insertion_ordered() {
        let mut left = Fsm::new("left");
        left.set_initial("s0");
        let mut right = Fsm::new("right");
        right.set_initial("s0");
        // Shared prefix so survivors interleave with common transitions.
        for f in [&mut left, &mut right] {
            f.add_transition(Transition::build("s0", "s1").when("common_a"));
            f.add_transition(Transition::build("s1", "s0").when("common_b"));
        }
        // Insertion order deliberately differs from lexicographic order.
        left.add_transition(Transition::build("s1", "s2").when("zeta"));
        left.add_transition(Transition::build("s2", "s0").when("alpha"));
        left.add_state("z_orphan");
        left.add_state("a_orphan");
        right.add_transition(Transition::build("s0", "s3").when("omega"));
        right.add_transition(Transition::build("s3", "s0").when("beta"));
        right.add_state("m_orphan");

        let d = diff(&left, &right);
        let removed: Vec<String> = d.removed.iter().map(|t| t.to_string()).collect();
        let added: Vec<String> = d.added.iter().map(|t| t.to_string()).collect();
        assert_eq!(removed, vec!["s1 -> s2 [zeta / ]", "s2 -> s0 [alpha / ]"]);
        assert_eq!(added, vec!["s0 -> s3 [omega / ]", "s3 -> s0 [beta / ]"]);
        // States iterate in `Fsm::states` order (sorted by name).
        assert_eq!(d.removed_states, vec!["a_orphan", "s2", "z_orphan"]);
        assert_eq!(d.added_states, vec!["m_orphan", "s3"]);
        // And the exact same output again: fully deterministic.
        assert_eq!(diff(&left, &right), d);
    }

    #[test]
    fn diff_is_antisymmetric() {
        let mut right = base();
        right.add_transition(Transition::build("s1", "s0").when("back"));
        let ab = diff(&base(), &right);
        let ba = diff(&right, &base());
        assert_eq!(ab.added, ba.removed);
        assert_eq!(ab.removed, ba.added);
    }
}
