//! Refinement relation between protocol FSMs (paper §VII-B, RQ2).
//!
//! The paper defines `M2 refines M1` by three properties:
//!
//! 1. every state of `M1` maps one-to-one into `M2`'s states (hand-built
//!    coarse states such as `ue_registered` may map onto a *set of
//!    sub-states* of the extracted model — the mapping is supplied by the
//!    caller as a [`StateMapping`], following the standards);
//! 2. the condition set `Σ2` and action set `Γ2` are supersets of `Σ1` and
//!    `Γ1` (strict supersets in the paper's comparison — the extracted model
//!    contains new payload-level constraints such as sequence numbers);
//! 3. every transition `t1 ∈ T1` maps onto `T2` in one of three ways:
//!    (i) *directly*; (ii) onto a transition with the same endpoints whose
//!    condition has the form `σ1 ∧ φ` (stricter); (iii) onto a *path*
//!    through new intermediate states whose combined conditions/actions
//!    cover `t1`'s (the paper's `ue_dereg_attach_needed` split, Fig 7 (ii)).
//!
//! [`check_refinement`] verifies all three and produces a detailed
//! [`RefinementReport`] used by the model-comparison experiment.

use crate::{Fsm, StateName, Transition};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Maps each state of the abstract model `M1` to the states of the refined
/// model `M2` that represent it (one state, or a set of sub-states).
///
/// States of `M1` absent from the map are assumed to map to the state with
/// the identical name in `M2`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateMapping {
    map: BTreeMap<StateName, BTreeSet<StateName>>,
}

impl StateMapping {
    /// An empty mapping: every `M1` state maps to its namesake in `M2`.
    pub fn identity() -> Self {
        StateMapping::default()
    }

    /// Declares that `abstract_state` of `M1` is represented by
    /// `sub_states` of `M2`.
    pub fn map_state<I, S>(&mut self, abstract_state: impl Into<StateName>, sub_states: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<StateName>,
    {
        self.map
            .entry(abstract_state.into())
            .or_default()
            .extend(sub_states.into_iter().map(Into::into));
    }

    /// The image of an `M1` state in `M2`.
    pub fn image(&self, state: &StateName) -> BTreeSet<StateName> {
        match self.map.get(state) {
            Some(set) => set.clone(),
            None => BTreeSet::from([*state]),
        }
    }
}

/// How a single abstract transition was matched in the refined model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransitionMapping {
    /// Case (i): an identical transition exists (up to state mapping).
    Direct,
    /// Case (ii): matched by a transition with a strictly stronger
    /// condition; the extra atoms are recorded.
    ConditionRefined {
        /// Condition atoms present in the refined transition but not the
        /// abstract one (the `φ` in `σ1 ∧ φ`).
        extra_conditions: Vec<String>,
    },
    /// Case (iii): matched by a path through new intermediate states.
    Split {
        /// The intermediate states the path traverses.
        via: Vec<StateName>,
    },
    /// No mapping found: the refinement fails on this transition.
    Unmapped,
}

/// Outcome of a refinement check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefinementReport {
    /// True iff all three refinement properties hold.
    pub refines: bool,
    /// `M1` states with no image in `M2`.
    pub unmapped_states: Vec<StateName>,
    /// Condition atoms of `M1` missing from `M2` (violates property 2).
    pub missing_conditions: Vec<String>,
    /// Action atoms of `M1` missing from `M2` (violates property 2).
    pub missing_actions: Vec<String>,
    /// True if `Σ2 ⊋ Σ1` (strict superset, as the paper observes for the
    /// extracted model).
    pub conditions_strictly_refined: bool,
    /// True if `Γ2 ⊋ Γ1`.
    pub actions_strictly_refined: bool,
    /// Per-abstract-transition mapping outcome, in `M1` transition order.
    pub transition_mappings: Vec<(Transition, TransitionMapping)>,
}

impl RefinementReport {
    /// Number of abstract transitions matched per mapping case
    /// `(direct, condition_refined, split, unmapped)`.
    pub fn mapping_histogram(&self) -> (usize, usize, usize, usize) {
        let mut h = (0, 0, 0, 0);
        for (_, m) in &self.transition_mappings {
            match m {
                TransitionMapping::Direct => h.0 += 1,
                TransitionMapping::ConditionRefined { .. } => h.1 += 1,
                TransitionMapping::Split { .. } => h.2 += 1,
                TransitionMapping::Unmapped => h.3 += 1,
            }
        }
        h
    }
}

/// Maximum number of intermediate states explored for the path case (iii).
const MAX_SPLIT_DEPTH: usize = 4;

/// Checks whether `refined` (the extracted model, `M2`) refines `abstract_`
/// (the hand-built model, `M1`) under the given state mapping.
///
/// The check is complete for split paths of up to four intermediate states,
/// which covers the paper's examples (one intermediate state).
pub fn check_refinement(
    abstract_: &Fsm,
    refined: &Fsm,
    mapping: &StateMapping,
) -> RefinementReport {
    // Property 1: state mapping lands inside S2.
    let mut unmapped_states = Vec::new();
    let mut image_of_abstract: BTreeSet<StateName> = BTreeSet::new();
    for s in abstract_.states() {
        let image = mapping.image(s);
        let missing = image.iter().any(|t| !refined.contains_state(t));
        if image.is_empty() || missing {
            unmapped_states.push(*s);
        }
        image_of_abstract.extend(image);
    }

    // Property 2: Σ2 ⊇ Σ1 and Γ2 ⊇ Γ1.
    let abstract_conds: BTreeSet<_> = abstract_.conditions().cloned().collect();
    let refined_conds: BTreeSet<_> = refined.conditions().cloned().collect();
    let abstract_acts: BTreeSet<_> = abstract_.actions().cloned().collect();
    let refined_acts: BTreeSet<_> = refined.actions().cloned().collect();
    let missing_conditions: Vec<String> = abstract_conds
        .difference(&refined_conds)
        .map(|c| c.to_string())
        .collect();
    let missing_actions: Vec<String> = abstract_acts
        .difference(&refined_acts)
        .map(|a| a.to_string())
        .collect();
    let conditions_strictly_refined =
        missing_conditions.is_empty() && refined_conds.len() > abstract_conds.len();
    let actions_strictly_refined =
        missing_actions.is_empty() && refined_acts.len() > abstract_acts.len();

    // Property 3: transition mapping.
    let mut transition_mappings = Vec::new();
    for t1 in abstract_.transitions() {
        let m = map_transition(t1, refined, mapping, &image_of_abstract);
        transition_mappings.push((t1.clone(), m));
    }

    let all_mapped = transition_mappings
        .iter()
        .all(|(_, m)| !matches!(m, TransitionMapping::Unmapped));
    let refines = unmapped_states.is_empty()
        && missing_conditions.is_empty()
        && missing_actions.is_empty()
        && all_mapped;

    RefinementReport {
        refines,
        unmapped_states,
        missing_conditions,
        missing_actions,
        conditions_strictly_refined,
        actions_strictly_refined,
        transition_mappings,
    }
}

fn map_transition(
    t1: &Transition,
    refined: &Fsm,
    mapping: &StateMapping,
    image_of_abstract: &BTreeSet<StateName>,
) -> TransitionMapping {
    let from_image = mapping.image(&t1.from);
    let to_image = mapping.image(&t1.to);

    // Cases (i) and (ii): a single refined transition between the images.
    let mut best_condition_refined: Option<Vec<String>> = None;
    for t2 in refined.transitions() {
        if !from_image.contains(&t2.from) || !to_image.contains(&t2.to) {
            continue;
        }
        if !t1.action.is_subset(&t2.action) {
            continue;
        }
        if t2.condition == t1.condition && t2.action == t1.action {
            return TransitionMapping::Direct;
        }
        if t1.condition.is_subset(&t2.condition) {
            let extra: Vec<String> = t2
                .condition
                .difference(&t1.condition)
                .map(|c| c.to_string())
                .collect();
            // Prefer the tightest refinement (fewest extra atoms).
            let better = best_condition_refined
                .as_ref()
                .is_none_or(|prev| extra.len() < prev.len());
            if better {
                best_condition_refined = Some(extra);
            }
        }
    }
    if let Some(extra_conditions) = best_condition_refined {
        return TransitionMapping::ConditionRefined { extra_conditions };
    }

    // Case (iii): a path through new intermediate states whose combined
    // conditions/actions cover t1's.
    for start in &from_image {
        if let Some(via) = find_split_path(t1, refined, start, &to_image, image_of_abstract) {
            return TransitionMapping::Split { via };
        }
    }
    TransitionMapping::Unmapped
}

/// DFS for a path `start → … → (∈ to_image)` through states that are *new*
/// in the refined model (not images of abstract states), collecting
/// conditions/actions; succeeds when they cover `t1`'s.
fn find_split_path(
    t1: &Transition,
    refined: &Fsm,
    start: &StateName,
    to_image: &BTreeSet<StateName>,
    image_of_abstract: &BTreeSet<StateName>,
) -> Option<Vec<StateName>> {
    struct Frame<'a> {
        state: &'a StateName,
        via: Vec<StateName>,
        conds: BTreeSet<crate::CondAtom>,
        acts: BTreeSet<crate::ActionAtom>,
    }
    let mut stack = vec![Frame {
        state: start,
        via: Vec::new(),
        conds: BTreeSet::new(),
        acts: BTreeSet::new(),
    }];
    while let Some(frame) = stack.pop() {
        for t2 in refined.outgoing(frame.state) {
            let mut conds = frame.conds.clone();
            conds.extend(t2.condition.iter().cloned());
            let mut acts = frame.acts.clone();
            acts.extend(t2.action.iter().cloned());
            let arrived = to_image.contains(&t2.to);
            if arrived
                && !frame.via.is_empty()
                && t1.condition.is_subset(&conds)
                && t1.action.is_subset(&acts)
            {
                return Some(frame.via.clone());
            }
            let is_new_state = !image_of_abstract.contains(&t2.to);
            if is_new_state && frame.via.len() < MAX_SPLIT_DEPTH && !frame.via.contains(&t2.to) {
                let mut via = frame.via.clone();
                via.push(t2.to);
                stack.push(Frame {
                    state: path_state(refined, &t2.to),
                    via,
                    conds,
                    acts,
                });
            }
        }
    }
    None
}

/// Returns the canonical `&StateName` owned by the FSM for lifetime
/// purposes (the state is known to exist: it came off a transition).
fn path_state<'a>(fsm: &'a Fsm, s: &StateName) -> &'a StateName {
    fsm.states()
        .find(|x| *x == s)
        .expect("state on a transition is registered in S")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Transition;

    /// The paper's Fig 7(i) example: LTEInspector's SMC transition vs the
    /// extracted, condition-refined one.
    fn lteinspector_like() -> Fsm {
        let mut f = Fsm::new("lte");
        f.set_initial("ue_deregistered");
        f.add_transition(
            Transition::build("ue_deregistered", "ue_register_initiated")
                .when("attach_enabled")
                .then("send_attach_request"),
        );
        f.add_transition(
            Transition::build("ue_register_initiated", "ue_registered")
                .when("security_mode_command")
                .then("security_mode_complete"),
        );
        f.add_transition(
            Transition::build("ue_dereg_initiated", "ue_deregistered")
                .when("detach_request")
                .then("detach_accept"),
        );
        f
    }

    fn prochecker_like() -> Fsm {
        let mut f = Fsm::new("pro");
        f.set_initial("ue_deregistered");
        f.add_transition(
            Transition::build("ue_deregistered", "ue_register_initiated")
                .when("attach_enabled")
                .then("send_attach_request"),
        );
        // Fig 7(i): same endpoints, stricter condition.
        f.add_transition(
            Transition::build("ue_register_initiated", "ue_registered")
                .when("security_mode_command")
                .when("ue_sequence_number=0")
                .then("security_mode_complete"),
        );
        // Fig 7(ii): detach split through a new intermediate state.
        f.add_transition(
            Transition::build("ue_dereg_initiated", "ue_dereg_attach_needed")
                .when("detach_request")
                .when("switch_off=false")
                .then("detach_accept"),
        );
        f.add_transition(
            Transition::build("ue_dereg_attach_needed", "ue_deregistered")
                .when("attach_needed")
                .then("send_attach_request"),
        );
        f
    }

    #[test]
    fn paper_fig7_refines() {
        let report = check_refinement(
            &lteinspector_like(),
            &prochecker_like(),
            &StateMapping::identity(),
        );
        assert!(report.refines, "report: {report:?}");
        let (direct, refined, split, unmapped) = report.mapping_histogram();
        assert_eq!(direct, 1);
        assert_eq!(refined, 1);
        assert_eq!(split, 1);
        assert_eq!(unmapped, 0);
        assert!(report.conditions_strictly_refined);
    }

    #[test]
    fn split_records_intermediate_state() {
        let report = check_refinement(
            &lteinspector_like(),
            &prochecker_like(),
            &StateMapping::identity(),
        );
        let split = report
            .transition_mappings
            .iter()
            .find_map(|(_, m)| match m {
                TransitionMapping::Split { via } => Some(via.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(split, vec![StateName::new("ue_dereg_attach_needed")]);
    }

    #[test]
    fn missing_condition_fails() {
        let mut abstract_ = Fsm::new("a");
        abstract_.add_transition(Transition::build("x", "y").when("m").then("r"));
        let mut refined = Fsm::new("b");
        refined.add_transition(Transition::build("x", "y").when("other").then("r"));
        let report = check_refinement(&abstract_, &refined, &StateMapping::identity());
        assert!(!report.refines);
        assert_eq!(report.missing_conditions, vec!["m".to_string()]);
    }

    #[test]
    fn unmapped_state_fails() {
        let mut abstract_ = Fsm::new("a");
        abstract_.add_transition(Transition::build("x", "y").when("m").then("r"));
        abstract_.add_state("z");
        let refined = {
            let mut f = Fsm::new("b");
            f.add_transition(Transition::build("x", "y").when("m").then("r"));
            f
        };
        let report = check_refinement(&abstract_, &refined, &StateMapping::identity());
        assert!(!report.refines);
        assert_eq!(report.unmapped_states, vec![StateName::new("z")]);
    }

    #[test]
    fn substate_mapping() {
        let mut abstract_ = Fsm::new("a");
        abstract_.add_transition(
            Transition::build("reg", "dereg")
                .when("detach_request")
                .then("detach_accept"),
        );
        let mut refined = Fsm::new("b");
        refined.add_transition(
            Transition::build("reg_normal_service", "dereg_normal")
                .when("detach_request")
                .then("detach_accept"),
        );
        let mut mapping = StateMapping::identity();
        mapping.map_state("reg", ["reg_normal_service"]);
        mapping.map_state("dereg", ["dereg_normal"]);
        let report = check_refinement(&abstract_, &refined, &mapping);
        assert!(report.refines, "{report:?}");
    }

    #[test]
    fn refinement_is_reflexive() {
        let f = lteinspector_like();
        let report = check_refinement(&f, &f, &StateMapping::identity());
        assert!(report.refines);
        let (direct, _, _, _) = report.mapping_histogram();
        assert_eq!(direct, f.transition_count());
        assert!(!report.conditions_strictly_refined);
    }

    #[test]
    fn action_must_be_covered() {
        let mut abstract_ = Fsm::new("a");
        abstract_.add_transition(Transition::build("x", "y").when("m").then("send_r"));
        let mut refined = Fsm::new("b");
        // Same condition but the action is dropped: not a refinement.
        refined.add_transition(Transition::build("x", "y").when("m").then("null_action"));
        refined.add_action("send_r"); // alphabet superset, but transition unmapped
        let report = check_refinement(&abstract_, &refined, &StateMapping::identity());
        assert!(!report.refines);
        let (_, _, _, unmapped) = report.mapping_histogram();
        assert_eq!(unmapped, 1);
    }
}
