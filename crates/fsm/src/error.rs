//! Error types for FSM parsing and refinement checking.

use std::error::Error;
use std::fmt;

/// Errors produced while parsing the Graphviz-like FSM format or while
/// validating FSMs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsmError {
    /// The textual model was syntactically malformed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Explanation of what was expected.
        message: String,
    },
    /// The model is missing a required element (e.g. an initial state).
    Incomplete(String),
    /// A state name was empty or all whitespace — rejected at intern
    /// time instead of silently producing an unusable model.
    InvalidStateName(String),
}

impl fmt::Display for FsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsmError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            FsmError::Incomplete(what) => write!(f, "incomplete model: {what}"),
            FsmError::InvalidStateName(name) => {
                write!(f, "invalid state name {name:?}: empty or whitespace")
            }
        }
    }
}

impl Error for FsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FsmError::Parse {
            line: 3,
            message: "expected '->'".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 3: expected '->'");
        let e2 = FsmError::Incomplete("no initial state".into());
        assert!(e2.to_string().contains("no initial state"));
    }
}
