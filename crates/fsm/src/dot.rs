//! Graphviz-like textual format for protocol FSMs.
//!
//! The paper's model generator "takes as input the state machine of the
//! protocol written in Graphviz-like language and outputs a SMV description"
//! (§VI). This module implements that input language: a `digraph` whose
//! edges carry `cond` and `act` attributes, plus an `init` pseudo-edge
//! marking the initial state.
//!
//! ```text
//! digraph ue {
//!   init -> emm_deregistered;
//!   emm_deregistered -> emm_registered_initiated [cond="attach_enabled", act="send_attach_request"];
//!   emm_registered_initiated -> emm_registered [cond="attach_accept & mac_valid=true", act="send_attach_complete"];
//! }
//! ```
//!
//! # Example
//!
//! ```
//! use procheck_fsm::{Fsm, Transition, dot};
//!
//! let mut ue = Fsm::new("ue");
//! ue.set_initial("emm_deregistered");
//! ue.add_transition(
//!     Transition::build("emm_deregistered", "emm_registered_initiated")
//!         .when("attach_enabled")
//!         .then("send_attach_request"),
//! );
//! let text = dot::to_dot(&ue);
//! let back = dot::from_dot(&text)?;
//! assert_eq!(ue, back);
//! # Ok::<(), procheck_fsm::FsmError>(())
//! ```

use crate::{ActionAtom, CondAtom, Fsm, FsmError, StateName, Transition};

/// Renders an FSM in the Graphviz-like language.
pub fn to_dot(fsm: &Fsm) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph {} {{\n", fsm.name()));
    if let Some(init) = fsm.initial() {
        out.push_str(&format!("  init -> {init};\n"));
    }
    for t in fsm.transitions() {
        let conds: Vec<String> = t.condition.iter().map(|c| c.to_string()).collect();
        let acts: Vec<String> = t.action.iter().map(|a| a.to_string()).collect();
        out.push_str(&format!(
            "  {} -> {} [cond=\"{}\", act=\"{}\"];\n",
            t.from,
            t.to,
            conds.join(" & "),
            acts.join(", ")
        ));
    }
    // Orphan states (registered but not on any transition) are emitted as
    // bare node lines so round-tripping preserves S exactly.
    for s in fsm.states() {
        let on_edge =
            fsm.transitions().any(|t| &t.from == s || &t.to == s) || fsm.initial() == Some(s);
        if !on_edge {
            out.push_str(&format!("  {s};\n"));
        }
    }
    out.push_str("}\n");
    out
}

/// Parses the Graphviz-like language back into an [`Fsm`].
///
/// # Errors
///
/// Returns [`FsmError::Parse`] on malformed input (missing header, bad edge
/// syntax, unterminated attribute list) and [`FsmError::Incomplete`] if the
/// body never closes.
pub fn from_dot(text: &str) -> Result<Fsm, FsmError> {
    let mut lines = text.lines().enumerate();
    let (header_no, header) = lines
        .by_ref()
        .map(|(i, l)| (i, l.trim()))
        .find(|(_, l)| !l.is_empty() && !l.starts_with("//"))
        .ok_or_else(|| FsmError::Incomplete("empty input".into()))?;
    let name = parse_header(header).ok_or_else(|| FsmError::Parse {
        line: header_no + 1,
        message: "expected `digraph <name> {`".into(),
    })?;
    let mut fsm = Fsm::new(name);
    let mut closed = false;
    for (i, raw) in lines {
        let line = raw.trim().trim_end_matches(';').trim();
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        if line == "}" {
            closed = true;
            break;
        }
        if let Some((lhs, rhs)) = line.split_once("->") {
            let from = lhs.trim();
            let (to, attrs) = split_edge_target(rhs).map_err(|message| FsmError::Parse {
                line: i + 1,
                message,
            })?;
            // State names go through the fallible constructor: an empty
            // edge endpoint is a parse error here, never a silently
            // interned empty symbol.
            let state = |name: &str| {
                StateName::try_new(name).map_err(|e| FsmError::Parse {
                    line: i + 1,
                    message: e.to_string(),
                })
            };
            let to = state(to)?;
            if from == "init" {
                fsm.set_initial(to);
                continue;
            }
            let mut t = Transition::build(state(from)?, to);
            if let Some(attrs) = attrs {
                for (key, val) in attrs {
                    match key.as_str() {
                        "cond" => {
                            for part in val.split('&') {
                                let part = part.trim();
                                if !part.is_empty() {
                                    t.condition.insert(CondAtom::parse(part));
                                }
                            }
                        }
                        "act" => {
                            for part in val.split(',') {
                                let part = part.trim();
                                if !part.is_empty() {
                                    t.action.insert(ActionAtom::new(part));
                                }
                            }
                        }
                        other => {
                            return Err(FsmError::Parse {
                                line: i + 1,
                                message: format!("unknown edge attribute `{other}`"),
                            })
                        }
                    }
                }
            }
            fsm.add_transition(t);
        } else {
            // Bare node declaration.
            fsm.add_state(StateName::try_new(line).map_err(|e| FsmError::Parse {
                line: i + 1,
                message: e.to_string(),
            })?);
        }
    }
    if !closed {
        return Err(FsmError::Incomplete("missing closing `}`".into()));
    }
    Ok(fsm)
}

fn parse_header(line: &str) -> Option<String> {
    let rest = line.strip_prefix("digraph")?.trim();
    let rest = rest.strip_suffix('{')?.trim();
    if rest.is_empty() || rest.contains(char::is_whitespace) {
        return None;
    }
    Some(rest.to_string())
}

/// Parsed `k="v"` attribute pairs of one edge.
type EdgeAttrs = Vec<(String, String)>;

/// Splits `"  target [k=\"v\", ...]"` into the target and parsed attributes.
fn split_edge_target(rhs: &str) -> Result<(&str, Option<EdgeAttrs>), String> {
    let rhs = rhs.trim();
    match rhs.find('[') {
        None => Ok((rhs, None)),
        Some(open) => {
            let target = rhs[..open].trim();
            let attr_text = rhs[open + 1..]
                .strip_suffix(']')
                .ok_or_else(|| "unterminated attribute list".to_string())?;
            let attrs = parse_attrs(attr_text)?;
            Ok((target, Some(attrs)))
        }
    }
}

fn parse_attrs(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut attrs = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("expected `key=\"value\"` in `{rest}`"))?;
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].trim_start();
        let after = after
            .strip_prefix('"')
            .ok_or_else(|| format!("attribute `{key}` value must be quoted"))?;
        let close = after
            .find('"')
            .ok_or_else(|| format!("unterminated string for attribute `{key}`"))?;
        let value = after[..close].to_string();
        attrs.push((key, value));
        rest = after[close + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(attrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateName;

    fn sample() -> Fsm {
        let mut f = Fsm::new("ue");
        f.set_initial("emm_deregistered");
        f.add_transition(
            Transition::build("emm_deregistered", "emm_registered_initiated")
                .when("attach_enabled")
                .then("send_attach_request"),
        );
        f.add_transition(
            Transition::build("emm_registered_initiated", "emm_registered")
                .when("attach_accept")
                .when("mac_valid=true")
                .then("send_attach_complete"),
        );
        f
    }

    #[test]
    fn round_trip() {
        let f = sample();
        let text = to_dot(&f);
        let back = from_dot(&text).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn round_trip_orphan_state() {
        let mut f = sample();
        f.add_state("emm_null");
        let back = from_dot(&to_dot(&f)).unwrap();
        assert!(back.contains_state(&StateName::new("emm_null")));
        assert_eq!(f, back);
    }

    #[test]
    fn parses_null_action_edge() {
        let text = r#"digraph ue {
            init -> a;
            a -> a [cond="bad_mac", act="null_action"];
        }"#;
        let f = from_dot(text).unwrap();
        let t = f.transitions().next().unwrap();
        assert!(t.action.iter().any(|a| a.is_null()));
    }

    #[test]
    fn rejects_missing_header() {
        let err = from_dot("graph x {\n}\n").unwrap_err();
        assert!(matches!(err, FsmError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_unknown_attribute() {
        let text = "digraph g {\n a -> b [color=\"red\"];\n}\n";
        let err = from_dot(text).unwrap_err();
        assert!(matches!(err, FsmError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_unterminated_attrs() {
        let text = "digraph g {\n a -> b [cond=\"x\";\n}\n";
        assert!(from_dot(text).is_err());
    }

    #[test]
    fn rejects_missing_close() {
        let text = "digraph g {\n a -> b;\n";
        assert!(matches!(from_dot(text), Err(FsmError::Incomplete(_))));
    }

    #[test]
    fn empty_cond_and_act_allowed() {
        let text = "digraph g {\n a -> b [cond=\"\", act=\"\"];\n}\n";
        let f = from_dot(text).unwrap();
        let t = f.transitions().next().unwrap();
        assert!(t.condition.is_empty());
        assert!(t.action.is_empty());
    }

    #[test]
    fn rejects_empty_state_name() {
        // `a -> ` parses the target as an empty string; the fallible
        // StateName constructor must turn that into a parse error.
        let text = "digraph g {\n a -> [cond=\"x\"];\n}\n";
        let err = from_dot(text).unwrap_err();
        assert!(matches!(err, FsmError::Parse { line: 2, .. }));
        assert!(err.to_string().contains("invalid state name"));
    }

    #[test]
    fn multi_cond_multi_act() {
        let text = "digraph g {\n a -> b [cond=\"m & x=1 & y=0\", act=\"send_r, send_s\"];\n}\n";
        let f = from_dot(text).unwrap();
        let t = f.transitions().next().unwrap();
        assert_eq!(t.condition.len(), 3);
        assert_eq!(t.action.len(), 2);
    }
}
