//! Canonical text form of an FSM, for the persistent analysis store.
//!
//! The cross-run store needs two things from an FSM that the in-memory
//! representation cannot give it directly:
//!
//! 1. a **stable byte string** to fingerprint — `Sym`/`StateId` interning
//!    ids are process-global and differ between runs, so hashes must be
//!    computed over resolved names, never ids;
//! 2. a **baseline snapshot** a later run can reconstruct and
//!    [`diff`](crate::diff::diff) against the freshly extracted machine
//!    to find the transitions a code change touched.
//!
//! [`canonical_text`] renders every component of the machine — name,
//! initial state, the full state/condition/action vocabularies (including
//! members registered explicitly but unused by any transition), and the
//! transitions **in insertion order** (the order drives downstream
//! threat-model command numbering, so it is part of the machine's
//! identity). [`parse_canonical`] inverts it exactly:
//! `parse_canonical(&canonical_text(f)) == f` for every machine the
//! extractor can produce.
//!
//! The format is line-oriented with a one-character tag per line; names
//! follow the tag verbatim to end-of-line, so any name without a newline
//! round-trips (extractor names are identifier-like).

use crate::{ActionAtom, CondAtom, Fsm, Transition};

/// Renders `fsm` in the canonical line-oriented text form.
pub fn canonical_text(fsm: &Fsm) -> String {
    let mut out = String::new();
    let mut line = |tag: &str, body: &str| {
        out.push_str(tag);
        out.push(' ');
        out.push_str(body);
        out.push('\n');
    };
    line("F", fsm.name());
    if let Some(initial) = fsm.initial() {
        line("I", initial.as_str());
    }
    for s in fsm.states() {
        line("S", s.as_str());
    }
    for c in fsm.conditions() {
        line("C", &c.to_string());
    }
    for a in fsm.actions() {
        line("A", a.as_str());
    }
    for t in fsm.transitions() {
        line("t", "");
        line("<", t.from.as_str());
        line(">", t.to.as_str());
        for c in &t.condition {
            line("c", &c.to_string());
        }
        for a in &t.action {
            line("a", a.as_str());
        }
    }
    out
}

/// Parses the canonical text form back into an [`Fsm`].
///
/// # Errors
///
/// A description of the first malformed line; callers in the store layer
/// treat any error as baseline corruption (a cold miss), never as an
/// empty machine.
pub fn parse_canonical(text: &str) -> Result<Fsm, String> {
    let mut lines = text.lines().enumerate().peekable();
    let (_, first) = lines.next().ok_or("empty canonical text")?;
    let name = first
        .strip_prefix("F ")
        .ok_or_else(|| format!("line 1: expected `F <name>`, got {first:?}"))?;
    let mut fsm = Fsm::new(name);
    // A transition block under assembly: endpoints arrive on the `<`/`>`
    // lines after the `t` marker, so the `Transition` is only built when
    // the block ends (state names must be non-empty at construction).
    #[derive(Default)]
    struct Block {
        from: Option<String>,
        to: Option<String>,
        conds: Vec<CondAtom>,
        acts: Vec<ActionAtom>,
    }
    fn flush(fsm: &mut Fsm, block: Option<Block>) -> Result<(), String> {
        let Some(block) = block else { return Ok(()) };
        let (Some(from), Some(to)) = (block.from, block.to) else {
            return Err("transition block missing `<` or `>` endpoint".to_string());
        };
        let mut t = Transition::build(from.as_str(), to.as_str());
        t.condition.extend(block.conds);
        t.action.extend(block.acts);
        fsm.add_transition(t);
        Ok(())
    }
    let mut pending: Option<Block> = None;
    for (i, line) in lines {
        let n = i + 1;
        let (tag, body) = line
            .split_once(' ')
            .ok_or_else(|| format!("line {n}: missing tag separator in {line:?}"))?;
        match tag {
            "I" => fsm.set_initial(body),
            "S" => fsm.add_state(body),
            "C" => fsm.add_condition(CondAtom::parse(body)),
            "A" => fsm.add_action(ActionAtom::new(body)),
            "t" => flush(&mut fsm, pending.replace(Block::default()))?,
            "<" | ">" | "c" | "a" => {
                let t = pending
                    .as_mut()
                    .ok_or_else(|| format!("line {n}: `{tag}` outside a transition block"))?;
                match tag {
                    "<" => t.from = Some(body.to_string()),
                    ">" => t.to = Some(body.to_string()),
                    "c" => t.conds.push(CondAtom::parse(body)),
                    _ => t.acts.push(ActionAtom::new(body)),
                }
            }
            _ => return Err(format!("line {n}: unknown tag {tag:?}")),
        }
    }
    flush(&mut fsm, pending.take())?;
    Ok(fsm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Fsm {
        let mut f = Fsm::new("ue");
        f.set_initial("idle");
        // Insertion order deliberately non-lexicographic.
        f.add_transition(
            Transition::build("idle", "waiting")
                .when("zeta_request")
                .when("sqn_ok=true")
                .then("zeta_response"),
        );
        f.add_transition(Transition::build("waiting", "idle").when("alpha_timeout"));
        f.add_state("orphan");
        f.add_condition(CondAtom::parse("observed_only=yes"));
        f.add_action(ActionAtom::new("unused_action"));
        f
    }

    #[test]
    fn round_trips_exactly() {
        let f = machine();
        let text = canonical_text(&f);
        let back = parse_canonical(&text).expect("parse");
        assert_eq!(back, f);
        // Canonical means canonical: render(parse(render(x))) is stable.
        assert_eq!(canonical_text(&back), text);
    }

    #[test]
    fn text_is_stable_bytes() {
        // The exact rendering is a fingerprint input; pin it.
        let mut f = Fsm::new("m");
        f.set_initial("s0");
        f.add_transition(Transition::build("s0", "s1").when("go").then("ack"));
        assert_eq!(
            canonical_text(&f),
            "F m\nI s0\nS s0\nS s1\nC go\nA ack\nt \n< s0\n> s1\nc go\na ack\n"
        );
    }

    #[test]
    fn transition_order_is_preserved() {
        let f = machine();
        let back = parse_canonical(&canonical_text(&f)).unwrap();
        let order: Vec<String> = back.transitions().map(|t| t.to_string()).collect();
        let want: Vec<String> = f.transitions().map(|t| t.to_string()).collect();
        assert_eq!(order, want);
        assert!(order[0].contains("zeta_request"), "{order:?}");
    }

    #[test]
    fn malformed_text_is_rejected() {
        assert!(parse_canonical("").is_err());
        assert!(parse_canonical("X nope\n").is_err());
        assert!(parse_canonical("F m\n< stray\n").is_err());
        assert!(parse_canonical("F m\nS\n").is_err(), "missing separator");
    }

    #[test]
    fn empty_machine_round_trips() {
        let f = Fsm::new("empty");
        assert_eq!(parse_canonical(&canonical_text(&f)).unwrap(), f);
    }
}
