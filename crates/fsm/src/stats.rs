//! Structural statistics for FSMs, used by the model-comparison experiment
//! (RQ2) to report how much richer the extracted model is than the
//! hand-built LTEInspector model.

use crate::Fsm;
use serde::{Deserialize, Serialize};

/// Summary counts for one FSM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FsmStats {
    /// `|S|`.
    pub states: usize,
    /// `|Σ|`.
    pub conditions: usize,
    /// Predicate-style conditions (`name=value`) — payload-level
    /// constraints the paper highlights as unique to extracted models.
    pub predicate_conditions: usize,
    /// `|Γ|`.
    pub actions: usize,
    /// `|T|`.
    pub transitions: usize,
    /// Mean number of condition atoms per transition.
    pub mean_condition_arity: f64,
    /// Mean out-degree over states with at least one outgoing transition.
    pub mean_out_degree: f64,
    /// States reachable from `s0`.
    pub reachable_states: usize,
}

impl FsmStats {
    /// Computes statistics for an FSM.
    pub fn of(fsm: &Fsm) -> Self {
        let transitions = fsm.transition_count();
        let total_cond_atoms: usize = fsm.transitions().map(|t| t.condition.len()).sum();
        let sources: std::collections::BTreeSet<_> = fsm.transitions().map(|t| &t.from).collect();
        FsmStats {
            states: fsm.states().count(),
            conditions: fsm.conditions().count(),
            predicate_conditions: fsm.conditions().filter(|c| !c.is_event()).count(),
            actions: fsm.actions().count(),
            transitions,
            mean_condition_arity: if transitions == 0 {
                0.0
            } else {
                total_cond_atoms as f64 / transitions as f64
            },
            mean_out_degree: if sources.is_empty() {
                0.0
            } else {
                transitions as f64 / sources.len() as f64
            },
            reachable_states: fsm.reachable_states().len(),
        }
    }
}

impl std::fmt::Display for FsmStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|S|={} |Σ|={} ({} predicates) |Γ|={} |T|={} cond-arity={:.2} out-degree={:.2} reachable={}",
            self.states,
            self.conditions,
            self.predicate_conditions,
            self.actions,
            self.transitions,
            self.mean_condition_arity,
            self.mean_out_degree,
            self.reachable_states,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Transition;

    #[test]
    fn stats_counts() {
        let mut f = Fsm::new("ue");
        f.set_initial("a");
        f.add_transition(Transition::build("a", "b").when("m").when("x=1").then("r"));
        f.add_transition(Transition::build("b", "a").when("n").then("s"));
        let st = FsmStats::of(&f);
        assert_eq!(st.states, 2);
        assert_eq!(st.conditions, 3);
        assert_eq!(st.predicate_conditions, 1);
        assert_eq!(st.actions, 2);
        assert_eq!(st.transitions, 2);
        assert!((st.mean_condition_arity - 1.5).abs() < 1e-9);
        assert!((st.mean_out_degree - 1.0).abs() < 1e-9);
        assert_eq!(st.reachable_states, 2);
    }

    #[test]
    fn empty_fsm_stats() {
        let st = FsmStats::of(&Fsm::new("x"));
        assert_eq!(st.states, 0);
        assert_eq!(st.mean_condition_arity, 0.0);
        assert_eq!(st.mean_out_degree, 0.0);
    }

    #[test]
    fn display_mentions_counts() {
        let mut f = Fsm::new("ue");
        f.add_transition(Transition::build("a", "b").when("m").then("r"));
        let s = FsmStats::of(&f).to_string();
        assert!(s.contains("|S|=2"));
        assert!(s.contains("|T|=1"));
    }
}
