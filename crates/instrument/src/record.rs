//! Log records and the textual log format.
//!
//! Each record corresponds to one instrumented print statement in the
//! paper's Figure 3. The textual form is a stable, line-oriented format:
//!
//! ```text
//! [pc] enter recv_attach_accept
//! [pc] global emm_state=EMM_REGISTERED_INITIATED
//! [pc] local mac_valid=true
//! [pc] exit recv_attach_accept
//! [pc] marker testcase=TC_ATTACH_COMPLETE
//! ```
//!
//! The extractor consumes [`LogRecord`]s; [`parse_log`] recovers them from
//! text so logs produced by the C-like source instrumentor (or saved to
//! disk) feed the same pipeline.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Prefix on every instrumented log line.
pub const LINE_PREFIX: &str = "[pc]";

/// One entry in the information-rich log.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogRecord {
    /// Control entered a function (e.g. an incoming-message handler).
    FunctionEnter {
        /// The function's name as it appears in the source.
        name: String,
    },
    /// Control is about to leave a function.
    FunctionExit {
        /// The function's name.
        name: String,
    },
    /// Value of a global variable (printed at function entry and exit;
    /// global state variables carry the protocol state, §II-D).
    GlobalVar {
        /// Variable name (e.g. `emm_state`).
        name: String,
        /// Rendered value (e.g. `EMM_REGISTERED_INITIATED`).
        value: String,
    },
    /// Last value of a local variable before the function exits (carries
    /// sanity-check results such as `mac_valid`).
    LocalVar {
        /// Variable name.
        name: String,
        /// Rendered value.
        value: String,
    },
    /// Out-of-band marker (test-case boundaries, coverage notes).
    Marker {
        /// Marker key (e.g. `testcase`).
        name: String,
        /// Marker payload (e.g. the test-case id).
        value: String,
    },
}

impl LogRecord {
    /// Convenience constructor for [`LogRecord::FunctionEnter`].
    pub fn enter(name: impl Into<String>) -> Self {
        LogRecord::FunctionEnter { name: name.into() }
    }

    /// Convenience constructor for [`LogRecord::FunctionExit`].
    pub fn exit(name: impl Into<String>) -> Self {
        LogRecord::FunctionExit { name: name.into() }
    }

    /// Convenience constructor for [`LogRecord::GlobalVar`].
    pub fn global(name: impl Into<String>, value: impl Into<String>) -> Self {
        LogRecord::GlobalVar {
            name: name.into(),
            value: value.into(),
        }
    }

    /// Convenience constructor for [`LogRecord::LocalVar`].
    pub fn local(name: impl Into<String>, value: impl Into<String>) -> Self {
        LogRecord::LocalVar {
            name: name.into(),
            value: value.into(),
        }
    }

    /// Convenience constructor for [`LogRecord::Marker`].
    pub fn marker(name: impl Into<String>, value: impl Into<String>) -> Self {
        LogRecord::Marker {
            name: name.into(),
            value: value.into(),
        }
    }

    /// The function name, for enter/exit records.
    pub fn function_name(&self) -> Option<&str> {
        match self {
            LogRecord::FunctionEnter { name } | LogRecord::FunctionExit { name } => Some(name),
            _ => None,
        }
    }
}

impl fmt::Display for LogRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogRecord::FunctionEnter { name } => write!(f, "{LINE_PREFIX} enter {name}"),
            LogRecord::FunctionExit { name } => write!(f, "{LINE_PREFIX} exit {name}"),
            LogRecord::GlobalVar { name, value } => {
                write!(f, "{LINE_PREFIX} global {name}={value}")
            }
            LogRecord::LocalVar { name, value } => {
                write!(f, "{LINE_PREFIX} local {name}={value}")
            }
            LogRecord::Marker { name, value } => {
                write!(f, "{LINE_PREFIX} marker {name}={value}")
            }
        }
    }
}

/// Renders a log as text, one record per line.
pub fn render_log(log: &[LogRecord]) -> String {
    let mut out = String::new();
    for r in log {
        out.push_str(&r.to_string());
        out.push('\n');
    }
    out
}

/// Why [`parse_log_checked`] rejected one `[pc]`-prefixed line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogParseReason {
    /// The line carries the `[pc]` prefix but was cut off before a
    /// complete `kind argument` pair (e.g. `[pc] enter` with no name).
    TruncatedRecord,
    /// A `global`/`local`/`marker` record missing its `name=value`
    /// assignment.
    MissingAssignment {
        /// The record kind that demanded an assignment.
        kind: String,
    },
    /// A record kind the format does not define (garbage or corruption).
    UnknownKind {
        /// The unrecognized kind token.
        kind: String,
    },
}

impl fmt::Display for LogParseReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogParseReason::TruncatedRecord => write!(f, "truncated record"),
            LogParseReason::MissingAssignment { kind } => {
                write!(f, "{kind} record missing name=value assignment")
            }
            LogParseReason::UnknownKind { kind } => write!(f, "unknown record kind {kind:?}"),
        }
    }
}

/// One malformed instrumented line, located by (1-based) line number.
/// Lines *without* the `[pc]` prefix are never issues — interleaved
/// test-framework chatter is expected, not malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogParseIssue {
    /// 1-based line number in the parsed text.
    pub line: usize,
    /// What was wrong with it.
    pub reason: LogParseReason,
}

impl fmt::Display for LogParseIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

/// Parses a textual log back into records.
///
/// Lines not bearing the `[pc]` prefix are ignored — real conformance logs
/// interleave the instrumentation output with ordinary test-framework
/// chatter, and the extractor must tolerate that. Malformed `[pc]` lines
/// are also skipped; use [`parse_log_checked`] to have each one surfaced
/// as a typed [`LogParseIssue`] instead of dropped silently.
pub fn parse_log(text: &str) -> Vec<LogRecord> {
    parse_log_checked(text).0
}

/// [`parse_log`] that also reports every malformed `[pc]` line as a
/// [`LogParseIssue`] (line number + reason) instead of dropping it
/// silently. The records are exactly what [`parse_log`] returns; this
/// function never panics, whatever the input — truncated lines, garbage
/// kinds, and missing assignments all land in the issue list.
pub fn parse_log_checked(text: &str) -> (Vec<LogRecord>, Vec<LogParseIssue>) {
    let mut out = Vec::new();
    let mut issues = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let mut reject = |reason: LogParseReason| {
            issues.push(LogParseIssue {
                line: idx + 1,
                reason,
            });
        };
        let line = line.trim();
        let Some(rest) = line.strip_prefix(LINE_PREFIX) else {
            continue;
        };
        let rest = rest.trim_start();
        let Some((kind, arg)) = rest.split_once(' ') else {
            reject(LogParseReason::TruncatedRecord);
            continue;
        };
        let arg = arg.trim();
        let rec = match kind {
            "enter" => LogRecord::enter(arg),
            "exit" => LogRecord::exit(arg),
            "global" | "local" | "marker" => {
                let Some((name, value)) = arg.split_once('=') else {
                    reject(LogParseReason::MissingAssignment {
                        kind: kind.to_string(),
                    });
                    continue;
                };
                let (name, value) = (name.trim().to_string(), value.trim().to_string());
                match kind {
                    "global" => LogRecord::GlobalVar { name, value },
                    "local" => LogRecord::LocalVar { name, value },
                    _ => LogRecord::Marker { name, value },
                }
            }
            _ => {
                reject(LogParseReason::UnknownKind {
                    kind: kind.to_string(),
                });
                continue;
            }
        };
        out.push(rec);
    }
    (out, issues)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<LogRecord> {
        vec![
            LogRecord::marker("testcase", "TC_ATTACH_COMPLETE"),
            LogRecord::enter("air_msg_handler"),
            LogRecord::enter("recv_attach_accept"),
            LogRecord::global("emm_state", "EMM_REGISTERED_INIT"),
            LogRecord::local("mac_valid", "true"),
            LogRecord::enter("send_attach_complete"),
            LogRecord::exit("send_attach_complete"),
            LogRecord::global("emm_state", "EMM_REGISTERED"),
            LogRecord::exit("recv_attach_accept"),
        ]
    }

    #[test]
    fn render_parse_round_trip() {
        let log = sample();
        let text = render_log(&log);
        assert_eq!(parse_log(&text), log);
    }

    #[test]
    fn non_instrumented_lines_ignored() {
        let text = "\
INFO: test framework starting
[pc] enter recv_attach_accept
random stderr noise
[pc] global emm_state=EMM_REGISTERED
";
        let log = parse_log(text);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn malformed_pc_lines_skipped() {
        let text = "\
[pc] enter
[pc] global no_equals_sign
[pc] unknownkind x
[pc] local ok=1
";
        let log = parse_log(text);
        assert_eq!(log, vec![LogRecord::local("ok", "1")]);
    }

    #[test]
    fn checked_parse_reports_typed_issues_with_line_numbers() {
        let text = "\
INFO: framework chatter (not an issue)
[pc] enter
[pc] global no_equals_sign
[pc] unknownkind x
[pc] local ok=1
";
        let (records, issues) = parse_log_checked(text);
        assert_eq!(records, vec![LogRecord::local("ok", "1")]);
        assert_eq!(
            issues,
            vec![
                LogParseIssue {
                    line: 2,
                    reason: LogParseReason::TruncatedRecord
                },
                LogParseIssue {
                    line: 3,
                    reason: LogParseReason::MissingAssignment {
                        kind: "global".into()
                    }
                },
                LogParseIssue {
                    line: 4,
                    reason: LogParseReason::UnknownKind {
                        kind: "unknownkind".into()
                    }
                },
            ]
        );
        assert_eq!(issues[0].to_string(), "line 2: truncated record");
        assert_eq!(
            issues[2].to_string(),
            "line 4: unknown record kind \"unknownkind\""
        );
    }

    #[test]
    fn checked_parse_agrees_with_lenient_parse() {
        let text = "\
[pc] marker testcase=TC
garbage \u{0} bytes \u{fffd}\u{fffd}
[pc] enter recv
[pc] exi
[pc] global emm_state=EMM_NULL
";
        let (records, issues) = parse_log_checked(text);
        assert_eq!(records, parse_log(text));
        assert_eq!(records.len(), 3);
        assert_eq!(issues.len(), 1, "{issues:?}");
    }

    #[test]
    fn values_may_contain_equals() {
        let text = "[pc] local expr=a=b";
        assert_eq!(parse_log(text), vec![LogRecord::local("expr", "a=b")]);
    }

    #[test]
    fn whitespace_tolerated() {
        let text = "   [pc]  global   emm_state = EMM_NULL  ";
        assert_eq!(
            parse_log(text),
            vec![LogRecord::global("emm_state", "EMM_NULL")]
        );
    }

    #[test]
    fn function_name_accessor() {
        assert_eq!(LogRecord::enter("f").function_name(), Some("f"));
        assert_eq!(LogRecord::exit("g").function_name(), Some("g"));
        assert_eq!(LogRecord::global("a", "b").function_name(), None);
    }

    #[test]
    fn display_format_matches_paper_style() {
        assert_eq!(
            LogRecord::enter("recv_attach_accept").to_string(),
            "[pc] enter recv_attach_accept"
        );
        assert_eq!(
            LogRecord::global("emm_state", "EMM_REGISTERED").to_string(),
            "[pc] global emm_state=EMM_REGISTERED"
        );
    }
}
