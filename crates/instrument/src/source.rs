//! Source-level instrumentor for C-like code (paper §IV-A(2), Fig 3).
//!
//! The paper's tool "takes the code directory of the specific protocol
//! layer as input, and instruments the code with print statements for
//! function entrance, global and local variables", leveraging standard
//! C/C++ coding practice: globals declared in header files, locals declared
//! in the first basic block of each function.
//!
//! This module reproduces that tool for a C-like source dialect. It is a
//! line-oriented, brace-counting transformer — deliberately requiring *no
//! knowledge of the implementation* beyond the coding conventions above,
//! exactly as the paper argues. It powers the `running_example` and the
//! instrumentor unit tests; the Rust protocol stacks use the equivalent
//! runtime hooks in [`crate::sink`] instead.

use std::collections::BTreeSet;

/// Options controlling the instrumentation pass.
#[derive(Debug, Clone, Default)]
pub struct InstrumentOptions {
    /// Names of global state variables (normally harvested from headers
    /// with [`extract_globals_from_header`]).
    pub globals: Vec<String>,
}

/// Result of instrumenting one source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstrumentedSource {
    /// The transformed source text.
    pub text: String,
    /// Functions that were instrumented, in order of appearance.
    pub functions: Vec<String>,
    /// Total number of print statements inserted.
    pub inserted_statements: usize,
}

/// Harvests global variable names from a C-like header: top-level
/// declarations of the form `type name;` or `type name = init;`.
pub fn extract_globals_from_header(header: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    for line in header.lines() {
        let trimmed = line.trim();
        if depth == 0
            && trimmed.ends_with(';')
            && !trimmed.contains('(')
            && !trimmed.starts_with("#")
            && !trimmed.starts_with("typedef")
            && !trimmed.starts_with("extern \"C\"")
            && !trimmed.starts_with("//")
        {
            let decl = trimmed.trim_end_matches(';');
            let decl = decl.split('=').next().unwrap_or(decl).trim();
            if let Some(name) = decl.split_whitespace().last() {
                let name = name.trim_start_matches('*');
                if is_identifier(name) && decl.split_whitespace().count() >= 2 {
                    out.push(name.to_string());
                }
            }
        }
        depth += trimmed.matches('{').count() as i32;
        depth -= trimmed.matches('}').count() as i32;
    }
    out
}

fn is_identifier(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// C keywords that look like function calls at statement heads.
const CONTROL_KEYWORDS: &[&str] = &["if", "else", "while", "for", "switch", "return", "sizeof"];

/// Attempts to parse a line as a function-definition head, returning the
/// function name. Requires an identifier immediately before `(` that is
/// not a control keyword, and at least one token (the return type) before
/// the identifier.
fn function_name_of(line: &str) -> Option<String> {
    let open = line.find('(')?;
    let head = &line[..open];
    let mut toks = head.split_whitespace().collect::<Vec<_>>();
    let name = toks.pop()?.trim_start_matches('*');
    if toks.is_empty() || !is_identifier(name) || CONTROL_KEYWORDS.contains(&name) {
        return None;
    }
    Some(name.to_string())
}

/// Parses local declarations of the form `type name;` / `type name = …;`
/// from a statement line inside a function body.
fn local_decl_of(line: &str) -> Option<String> {
    let trimmed = line.trim();
    if !trimmed.ends_with(';') {
        return None;
    }
    let decl = trimmed.trim_end_matches(';');
    let lhs = decl.split('=').next().unwrap_or(decl).trim();
    if lhs.contains('(') {
        return None;
    }
    let toks: Vec<&str> = lhs.split_whitespace().collect();
    if toks.len() < 2 {
        return None;
    }
    let name = toks.last()?.trim_start_matches('*');
    let ty = toks[0];
    const TYPES: &[&str] = &[
        "int", "bool", "char", "short", "long", "unsigned", "uint8_t", "uint16_t", "uint32_t",
        "uint64_t", "size_t", "status_t",
    ];
    if TYPES.contains(&ty) && is_identifier(name) {
        Some(name.to_string())
    } else {
        None
    }
}

fn print_enter(indent: &str, func: &str) -> String {
    format!("{indent}printf(\"[pc] enter {func}\\n\");")
}

fn print_exit(indent: &str, func: &str) -> String {
    format!("{indent}printf(\"[pc] exit {func}\\n\");")
}

fn print_global(indent: &str, name: &str) -> String {
    format!("{indent}printf(\"[pc] global {name}=%d\\n\", {name});")
}

fn print_local(indent: &str, name: &str) -> String {
    format!("{indent}printf(\"[pc] local {name}=%d\\n\", {name});")
}

fn indent_of(line: &str) -> String {
    line.chars().take_while(|c| c.is_whitespace()).collect()
}

/// Instruments a C-like source file.
///
/// Inserted statements per function:
/// * after the opening brace — `enter` marker and one `global` dump per
///   configured global;
/// * before every `return` and before the closing brace — one `local` dump
///   per local declared in the function (first basic block convention),
///   one `global` dump per global, and the `exit` marker.
pub fn instrument_source(source: &str, options: &InstrumentOptions) -> InstrumentedSource {
    let mut out: Vec<String> = Vec::new();
    let mut functions = Vec::new();
    let mut inserted = 0usize;

    let mut depth = 0i32;
    let mut current: Option<String> = None; // current function name
    let mut locals: BTreeSet<String> = BTreeSet::new();
    let mut pending_fn: Option<String> = None; // signature seen, waiting for '{'

    let lines: Vec<&str> = source.lines().collect();
    for raw in &lines {
        let line = *raw;
        let trimmed = line.trim();
        let opens = trimmed.matches('{').count() as i32;
        let closes = trimmed.matches('}').count() as i32;

        // Function-head detection (only at top level).
        if depth == 0 && current.is_none() {
            if let Some(name) = function_name_of(trimmed) {
                if trimmed.ends_with('{') || trimmed.ends_with(") {") {
                    // `ret name(args) {` on one line.
                    out.push(line.to_string());
                    depth += opens - closes;
                    current = Some(name.clone());
                    functions.push(name.clone());
                    locals.clear();
                    let ind = format!("{}    ", indent_of(line));
                    out.push(print_enter(&ind, &name));
                    inserted += 1;
                    for g in &options.globals {
                        out.push(print_global(&ind, g));
                        inserted += 1;
                    }
                    continue;
                } else if !trimmed.ends_with(';') {
                    pending_fn = Some(name);
                    out.push(line.to_string());
                    continue;
                }
            }
        }

        // Opening brace on its own line after a pending signature.
        if let Some(name) = pending_fn.take() {
            if trimmed.starts_with('{') {
                out.push(line.to_string());
                depth += opens - closes;
                current = Some(name.clone());
                functions.push(name.clone());
                locals.clear();
                let ind = format!("{}    ", indent_of(line));
                out.push(print_enter(&ind, &name));
                inserted += 1;
                for g in &options.globals {
                    out.push(print_global(&ind, g));
                    inserted += 1;
                }
                continue;
            }
            // Not a function body after all (e.g. a prototype split oddly).
        }

        if let Some(func) = current.clone() {
            // Record local declarations (first-basic-block convention: we
            // accept them anywhere at depth 1, a superset that matches the
            // paper's simple instrumentor).
            if depth == 1 {
                if let Some(name) = local_decl_of(trimmed) {
                    locals.insert(name);
                }
            }

            let is_return = trimmed.starts_with("return");
            let closes_function = depth + opens - closes == 0 && closes > 0;

            if is_return || closes_function {
                let ind = if is_return {
                    indent_of(line)
                } else {
                    format!("{}    ", indent_of(line))
                };
                for l in &locals {
                    out.push(print_local(&ind, l));
                    inserted += 1;
                }
                for g in &options.globals {
                    out.push(print_global(&ind, g));
                    inserted += 1;
                }
                out.push(print_exit(&ind, &func));
                inserted += 1;
            }

            out.push(line.to_string());
            depth += opens - closes;
            if depth == 0 {
                current = None;
            }
            continue;
        }

        out.push(line.to_string());
        depth += opens - closes;
    }

    InstrumentedSource {
        text: out.join("\n") + "\n",
        functions,
        inserted_statements: inserted,
    }
}

/// The paper's Figure 3 example source (simplified UE-side attach-accept
/// handling), bundled so the running example and tests can regenerate the
/// figure.
pub const FIG3_HEADER: &str = "\
// nas_globals.h
int emm_state;
int guti;
";

/// Figure 3 example implementation body (see [`FIG3_HEADER`]).
pub const FIG3_SOURCE: &str = "\
void air_msg_handler(msg_t m) {
    int msg_type = parse_type(m);
    if (msg_type == ATTACH_ACCEPT) {
        recv_attach_accept(m);
    }
}

void recv_attach_accept(msg_t m) {
    int mac_valid = check_mac(m);
    if (mac_valid == 0) {
        return;
    }
    emm_state = EMM_REGISTERED;
    send_attach_complete(m);
}

void send_attach_complete(msg_t m) {
    int status = transmit(build_attach_complete(m));
}
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harvests_globals_from_header() {
        assert_eq!(
            extract_globals_from_header(FIG3_HEADER),
            vec!["emm_state", "guti"]
        );
    }

    #[test]
    fn header_parser_skips_functions_and_directives() {
        let header = "\
#include <stdio.h>
typedef int state_t;
int get_state(void);
// int commented_out;
state_t current_state;
struct ctx {
    int inner_field;
};
";
        assert_eq!(extract_globals_from_header(header), vec!["current_state"]);
    }

    #[test]
    fn instruments_fig3_functions() {
        let opts = InstrumentOptions {
            globals: extract_globals_from_header(FIG3_HEADER),
        };
        let result = instrument_source(FIG3_SOURCE, &opts);
        assert_eq!(
            result.functions,
            vec![
                "air_msg_handler",
                "recv_attach_accept",
                "send_attach_complete"
            ]
        );
        // Every function gets an enter marker...
        for f in &result.functions {
            assert!(
                result.text.contains(&format!("[pc] enter {f}")),
                "missing enter for {f} in:\n{}",
                result.text
            );
            assert!(result.text.contains(&format!("[pc] exit {f}")));
        }
        // ...and global dumps at entry.
        assert!(result.text.contains("[pc] global emm_state=%d"));
    }

    #[test]
    fn locals_dumped_before_exit() {
        let opts = InstrumentOptions {
            globals: vec!["emm_state".into()],
        };
        let result = instrument_source(FIG3_SOURCE, &opts);
        // `mac_valid` is a local of recv_attach_accept; it must be printed
        // before both the early return and the closing brace.
        let count = result.text.matches("[pc] local mac_valid=%d").count();
        assert_eq!(count, 2, "text:\n{}", result.text);
    }

    #[test]
    fn early_return_instrumented() {
        let src = "\
int handler(int x) {
    int ok = check(x);
    if (ok == 0) {
        return 0;
    }
    return 1;
}
";
        let result = instrument_source(src, &InstrumentOptions::default());
        // Two returns -> two exit markers (no closing-brace exit because the
        // last statement is a return... the brace still adds one).
        let exits = result.text.matches("[pc] exit handler").count();
        assert!(exits >= 2, "text:\n{}", result.text);
        // Exit print appears before each return line.
        let lines: Vec<&str> = result.text.lines().collect();
        for (i, l) in lines.iter().enumerate() {
            if l.trim().starts_with("return") {
                assert!(lines[i - 1].contains("[pc] exit handler"));
            }
        }
    }

    #[test]
    fn control_keywords_not_mistaken_for_functions() {
        let src = "\
void f(void) {
    if (x) {
        g();
    }
    while (y) {
        h();
    }
}
";
        let result = instrument_source(src, &InstrumentOptions::default());
        assert_eq!(result.functions, vec!["f"]);
    }

    #[test]
    fn brace_on_next_line_supported() {
        let src = "\
int handler(int x)
{
    return x;
}
";
        let result = instrument_source(src, &InstrumentOptions::default());
        assert_eq!(result.functions, vec!["handler"]);
        assert!(result.text.contains("[pc] enter handler"));
    }

    #[test]
    fn prototypes_not_instrumented() {
        let src = "\
int handler(int x);

int handler(int x) {
    return x;
}
";
        let result = instrument_source(src, &InstrumentOptions::default());
        assert_eq!(result.functions, vec!["handler"]);
    }

    #[test]
    fn insertion_count_reported() {
        let opts = InstrumentOptions {
            globals: vec!["g".into()],
        };
        let src = "void f(void) {\n    return;\n}\n";
        let result = instrument_source(src, &opts);
        // enter + global at entry; global + exit before return; global +
        // exit at closing brace.
        assert_eq!(result.inserted_statements, 6, "text:\n{}", result.text);
    }

    #[test]
    fn idempotent_function_list_on_empty_source() {
        let result = instrument_source("", &InstrumentOptions::default());
        assert!(result.functions.is_empty());
        assert_eq!(result.inserted_statements, 0);
    }
}
