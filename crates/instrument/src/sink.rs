//! Instrumentation sinks.
//!
//! The simulated protocol stacks call these hooks at exactly the program
//! points where the paper's source instrumentor inserts print statements:
//! function entry/exit, global-variable dumps at both, and local-variable
//! dumps right before exit. Swapping the sink ([`Recorder`] vs
//! [`NullInstrumentation`]) turns instrumentation on/off without touching
//! stack code — which is also how the instrumentation-overhead ablation
//! bench measures cost.

use crate::record::LogRecord;
use parking_lot::Mutex;
use std::sync::Arc;

/// Receiver for instrumentation events.
///
/// Implementations must be cheap and non-blocking: the stacks call these
/// hooks on every handler invocation.
pub trait Instrumentation: Send + Sync {
    /// Function entrance.
    fn enter(&self, function: &str);
    /// Function exit.
    fn exit(&self, function: &str);
    /// Global-variable value dump.
    fn global(&self, name: &str, value: &str);
    /// Local-variable value dump (right before function exit).
    fn local(&self, name: &str, value: &str);
    /// Out-of-band marker (test-case boundaries).
    fn marker(&self, name: &str, value: &str);
}

/// Records every event into an in-memory log (the "information-rich log"
/// the extractor consumes). Cloning shares the underlying buffer.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    buf: Arc<Mutex<Vec<LogRecord>>>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Takes the accumulated log, leaving the recorder empty.
    pub fn take(&self) -> Vec<LogRecord> {
        std::mem::take(&mut self.buf.lock())
    }

    /// Copies the accumulated log without clearing it.
    pub fn snapshot(&self) -> Vec<LogRecord> {
        self.buf.lock().clone()
    }

    /// Number of records accumulated so far.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// True if no records have been captured.
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }
}

impl Instrumentation for Recorder {
    fn enter(&self, function: &str) {
        self.buf.lock().push(LogRecord::enter(function));
    }

    fn exit(&self, function: &str) {
        self.buf.lock().push(LogRecord::exit(function));
    }

    fn global(&self, name: &str, value: &str) {
        self.buf.lock().push(LogRecord::global(name, value));
    }

    fn local(&self, name: &str, value: &str) {
        self.buf.lock().push(LogRecord::local(name, value));
    }

    fn marker(&self, name: &str, value: &str) {
        self.buf.lock().push(LogRecord::marker(name, value));
    }
}

/// Discards every event — the uninstrumented baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullInstrumentation;

impl Instrumentation for NullInstrumentation {
    fn enter(&self, _function: &str) {}
    fn exit(&self, _function: &str) {}
    fn global(&self, _name: &str, _value: &str) {}
    fn local(&self, _name: &str, _value: &str) {}
    fn marker(&self, _name: &str, _value: &str) {}
}

/// RAII guard that emits matching enter/exit records around a handler
/// body, with global-variable dumps supplied by a closure at both ends —
/// the exact shape of the paper's per-function instrumentation.
pub struct FunctionSpan<'a> {
    sink: &'a dyn Instrumentation,
    name: &'a str,
}

impl<'a> FunctionSpan<'a> {
    /// Enters `name`: emits the entrance record.
    pub fn enter(sink: &'a dyn Instrumentation, name: &'a str) -> Self {
        sink.enter(name);
        FunctionSpan { sink, name }
    }

    /// Dumps a local variable's value (callers do this right before the
    /// span drops, matching "local variables right before the exit").
    pub fn local(&self, name: &str, value: impl std::fmt::Display) {
        self.sink.local(name, &value.to_string());
    }
}

impl Drop for FunctionSpan<'_> {
    fn drop(&mut self) {
        self.sink.exit(self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_accumulates_in_order() {
        let r = Recorder::new();
        r.marker("testcase", "tc1");
        r.enter("f");
        r.global("g", "1");
        r.local("l", "2");
        r.exit("f");
        let log = r.take();
        assert_eq!(log.len(), 5);
        assert_eq!(log[1], LogRecord::enter("f"));
        assert_eq!(log[4], LogRecord::exit("f"));
        assert!(r.is_empty());
    }

    #[test]
    fn clones_share_buffer() {
        let r = Recorder::new();
        let r2 = r.clone();
        r.enter("f");
        r2.exit("f");
        assert_eq!(r.len(), 2);
        assert_eq!(r.snapshot().len(), 2);
        assert_eq!(r.len(), 2, "snapshot does not clear");
    }

    #[test]
    fn null_sink_discards() {
        let n = NullInstrumentation;
        n.enter("f");
        n.global("g", "1");
        // Nothing observable: this test just exercises the no-op paths.
    }

    #[test]
    fn function_span_emits_enter_and_exit() {
        let r = Recorder::new();
        {
            let span = FunctionSpan::enter(&r, "recv_attach_accept");
            span.local("mac_valid", true);
        }
        let log = r.take();
        assert_eq!(
            log,
            vec![
                LogRecord::enter("recv_attach_accept"),
                LogRecord::local("mac_valid", "true"),
                LogRecord::exit("recv_attach_accept"),
            ]
        );
    }

    #[test]
    fn span_exits_on_early_return() {
        let r = Recorder::new();
        fn handler(sink: &dyn Instrumentation, fail: bool) -> bool {
            let span = FunctionSpan::enter(sink, "h");
            if fail {
                span.local("mac_valid", false);
                return false;
            }
            span.local("mac_valid", true);
            true
        }
        handler(&r, true);
        let log = r.take();
        assert_eq!(log.last(), Some(&LogRecord::exit("h")));
    }
}
