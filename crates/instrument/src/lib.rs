//! Code instrumentation for the ProChecker reproduction (paper §IV-A(1–2)).
//!
//! ProChecker's model extraction consumes an *information-rich log*: the
//! values of global variables at each function's entry and exit, the values
//! of local variables right before a function returns, and function
//! entrance/exit markers. The paper obtains this log by automatically
//! instrumenting the C++ source of the NAS layer with print statements and
//! running the conformance test suite.
//!
//! This crate provides both halves of that story:
//!
//! * [`record`] — the log record model and its textual form, plus parsing
//!   (the contract between the stacks/instrumentor and the extractor);
//! * [`sink`] — instrumentation sinks: the simulated Rust protocol stacks
//!   in `procheck-stack` call [`sink::Instrumentation`] hooks at exactly
//!   the points the paper's source instrumentation prints;
//! * [`source`] — a source-level instrumentor for C-like code that inserts
//!   the print statements of the paper's Figure 3 (kept for fidelity and
//!   used by the `running_example` binary).
//!
//! # Example
//!
//! ```
//! use procheck_instrument::record::LogRecord;
//! use procheck_instrument::sink::Recorder;
//! use procheck_instrument::sink::Instrumentation;
//!
//! let rec = Recorder::new();
//! rec.enter("recv_attach_accept");
//! rec.global("emm_state", "EMM_REGISTERED_INITIATED");
//! rec.local("mac_valid", "true");
//! rec.exit("recv_attach_accept");
//! let log = rec.take();
//! assert_eq!(log.len(), 4);
//! assert!(matches!(&log[0], LogRecord::FunctionEnter { name } if name == "recv_attach_accept"));
//! ```

pub mod record;
pub mod sink;
pub mod source;

pub use record::{parse_log, parse_log_checked, LogParseIssue, LogParseReason, LogRecord};
pub use sink::{Instrumentation, NullInstrumentation, Recorder};
