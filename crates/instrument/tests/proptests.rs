//! Property-based tests for the log format and the C-like instrumentor.

use procheck_instrument::record::{parse_log, render_log, LogRecord};
use procheck_instrument::source::{instrument_source, InstrumentOptions};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = LogRecord> {
    let ident = "[a-z_][a-z0-9_]{0,12}";
    let value = "[a-zA-Z0-9_.:-]{1,12}";
    prop_oneof![
        ident.prop_map(LogRecord::enter),
        ident.prop_map(LogRecord::exit),
        (ident, value).prop_map(|(n, v)| LogRecord::global(n, v)),
        (ident, value).prop_map(|(n, v)| LogRecord::local(n, v)),
        (ident, value).prop_map(|(n, v)| LogRecord::marker(n, v)),
    ]
}

proptest! {
    /// The textual log format round-trips arbitrary records.
    #[test]
    fn log_text_round_trip(log in proptest::collection::vec(arb_record(), 0..40)) {
        prop_assert_eq!(parse_log(&render_log(&log)), log);
    }

    /// Parsing arbitrary text never panics and only ever yields records
    /// that render back to a parseable line.
    #[test]
    fn parse_total(text in "\\PC{0,200}") {
        let records = parse_log(&text);
        let rendered = render_log(&records);
        prop_assert_eq!(parse_log(&rendered).len(), records.len());
    }

    /// The instrumentor is idempotent on function discovery: running it
    /// on already-instrumented output finds the same functions (print
    /// statements do not look like function heads).
    #[test]
    fn instrumentor_function_discovery_stable(
        names in proptest::collection::btree_set("[a-z][a-z0-9_]{0,8}", 1..5),
    ) {
        let mut src = String::new();
        for n in &names {
            src.push_str(&format!("int {n}(int x) {{\n    return x;\n}}\n\n"));
        }
        let opts = InstrumentOptions::default();
        let first = instrument_source(&src, &opts);
        prop_assert_eq!(
            &first.functions,
            &names.iter().cloned().collect::<Vec<_>>()
        );
        let second = instrument_source(&first.text, &opts);
        prop_assert_eq!(&second.functions, &first.functions);
    }
}
