//! Malformed-log corpus: the parser must degrade, never panic.
//!
//! Each fixture under `tests/fixtures/` is a conformance log damaged in
//! a way observed in the wild — cut off mid-record, spliced with binary
//! garbage, or interleaved with framework chatter. [`parse_log_checked`]
//! must consume every one without panicking, return exactly the records
//! the lenient [`parse_log`] returns, and surface each malformed `[pc]`
//! line as a typed [`LogParseIssue`] with its line number.

use procheck_instrument::{parse_log, parse_log_checked, LogParseReason};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {}: {e}", path.display()))
}

/// Every fixture parses without panicking, and the checked parse returns
/// the same records as the lenient one (the issues are *extra*
/// information, never a behaviour change).
#[test]
fn corpus_parses_without_panicking_and_agrees_with_lenient_parse() {
    for name in [
        "truncated_tail.log",
        "garbage_bytes.log",
        "interleaved_clean.log",
    ] {
        let text = fixture(name);
        let (records, issues) = parse_log_checked(&text);
        assert_eq!(records, parse_log(&text), "{name}");
        for issue in &issues {
            assert!(issue.line >= 1, "{name}: {issue}");
            assert!(
                issue.line <= text.lines().count(),
                "{name}: issue past EOF: {issue}"
            );
        }
    }
}

/// A log cut off mid-record keeps its intact prefix and reports each
/// truncated line by number.
#[test]
fn truncated_log_surfaces_line_numbers() {
    let (records, issues) = parse_log_checked(&fixture("truncated_tail.log"));
    assert_eq!(records.len(), 8, "intact prefix fully recovered");
    let lines: Vec<usize> = issues.iter().map(|i| i.line).collect();
    assert_eq!(lines, vec![9, 10, 11]);
    assert!(issues
        .iter()
        .all(|i| i.reason == LogParseReason::TruncatedRecord));
}

/// Binary garbage spliced into the log yields typed issues — unknown
/// kinds and missing assignments — while intact records still parse.
#[test]
fn garbage_log_surfaces_typed_reasons() {
    let (records, issues) = parse_log_checked(&fixture("garbage_bytes.log"));
    assert!(
        records
            .iter()
            .any(|r| r.function_name() == Some("recv_attach_accept")),
        "intact records recovered around the damage"
    );
    let unknown = issues
        .iter()
        .filter(|i| matches!(i.reason, LogParseReason::UnknownKind { .. }))
        .count();
    let missing = issues
        .iter()
        .filter(|i| matches!(i.reason, LogParseReason::MissingAssignment { .. }))
        .count();
    assert_eq!(unknown, 2, "{issues:?}");
    assert_eq!(missing, 1, "{issues:?}");
}

/// Framework chatter between records is expected input, not damage: a
/// clean interleaved log produces zero issues.
#[test]
fn interleaved_chatter_is_not_an_issue() {
    let (records, issues) = parse_log_checked(&fixture("interleaved_clean.log"));
    assert_eq!(records.len(), 6);
    assert!(issues.is_empty(), "{issues:?}");
}
