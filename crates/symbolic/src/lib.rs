//! Bounded symbolic checking backend for the ProChecker reproduction.
//!
//! This crate is the second implementation of the
//! [`procheck_smv::CheckBackend`] seam: a bounded model checker (BMC)
//! that bit-blasts a [`procheck_smv::checker::CompiledModel`] and one
//! compiled property into CNF and decides it with an in-repo CDCL SAT
//! solver. Nothing here links against an external solver — the whole
//! stack (literals, Tseitin encodings, watched-literal propagation,
//! 1UIP learning) lives in this crate, std-only, mirroring the
//! workspace's vendored-dependency discipline.
//!
//! Layering, bottom up:
//!
//! * [`cnf`] — literals, clauses, and the Tseitin/cardinality builders;
//! * [`solver`] — the CDCL solver (two watched literals, VSIDS,
//!   restarts, budget-interruptible);
//! * [`encode`] — the model/property → CNF unrolling and the SAT-model
//!   → path decoder;
//! * [`replay`] — replays every decoded path on the source model before
//!   it becomes a verdict (divergence, not verdict, on mismatch);
//! * [`backend`] — ties the above into [`BmcBackend`], the
//!   `CheckBackend` implementation the pipeline selects with
//!   `PROCHECK_BACKEND=symbolic` (or cross-validates with `both`).
//!
//! The engine is *refutation-complete up to its bound* and nothing
//! more: `SAT` yields a replay-validated counterexample, `UNSAT` yields
//! [`procheck_smv::BackendVerdict::BoundReached`] — a settled but
//! weaker outcome the caller must never promote to a proof.

pub mod backend;
pub mod cnf;
pub mod encode;
pub mod replay;
pub mod solver;

pub use backend::BmcBackend;
pub use encode::{bmc_check, BmcAnswer, BmcPath};
pub use solver::{SolveOutcome, Solver, SolverStats};

/// Default BMC bound (transitions), chosen above the longest golden
/// counterexample in the registry (18 transitions) so stock analyses
/// cross-validate without truncation. Override with `PROCHECK_BMC_BOUND`.
pub const DEFAULT_BMC_BOUND: usize = 24;
