//! An in-repo CDCL SAT solver (std-only, vendored-discipline: no
//! external solver crates, same rule as `vendor/README.md`).
//!
//! The design is the classic MiniSat core, scaled to this workspace's
//! instances (bit-blasted NAS threat models — tens of thousands of
//! variables, sub-million clauses):
//!
//! * **two watched literals** per clause, so propagation only visits
//!   clauses whose watch just became false;
//! * **first-UIP conflict analysis** with learned-clause recording and
//!   non-chronological backjumping;
//! * **VSIDS-style variable activity** (bump on conflict participation,
//!   geometric decay, lazy max-heap with stale entries);
//! * **phase saving** (re-decide a variable with its last value; the
//!   initial phase is *false*, which on one-hot state encodings steers
//!   the search away from multi-hot dead ends);
//! * **geometric restarts** (first after 100 conflicts, ×1.5).
//!
//! Invariants the implementation maintains (DESIGN.md §5i):
//!
//! 1. watch invariant — a clause's two watched literals are its first
//!    two; neither is false unless the clause is satisfied or the other
//!    watch is being propagated this round;
//! 2. trail invariant — `trail[..qhead]` is fully propagated; every
//!    assigned non-decision literal's reason clause is unit under the
//!    assignment prefix before it;
//! 3. learned clauses are implied by the original formula (resolution
//!    chains only), so deleting or keeping them never changes verdicts.

use crate::cnf::{Cnf, Lit, Var};
use std::collections::BinaryHeap;

/// Monotonic solver work counters, surfaced as `backend.*` telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Input clauses loaded (before learning).
    pub clauses: u64,
    /// Decision literals picked.
    pub decisions: u64,
    /// Literals propagated off the trail.
    pub propagations: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learned.
    pub learned: u64,
}

impl SolverStats {
    /// Folds another solve's counters into this one.
    pub fn absorb(&mut self, other: SolverStats) {
        self.clauses += other.clauses;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.restarts += other.restarts;
        self.learned += other.learned;
    }
}

/// Outcome of a solve call.
#[derive(Debug)]
pub enum SolveOutcome {
    /// Satisfiable; the witness assigns every variable.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
    /// The caller's budget callback stopped the search.
    Interrupted,
}

const UNDEF: u8 = 2;
const NO_REASON: u32 = u32::MAX;

/// Heap entry ordered by activity (max-heap). Entries go stale when the
/// activity changes after push; staleness only perturbs the heuristic
/// order, never correctness, so pops don't re-validate priorities.
struct HeapEntry {
    act: f64,
    var: Var,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.act == other.act && self.var == other.var
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.act
            .total_cmp(&other.act)
            .then(self.var.cmp(&other.var))
    }
}

struct Clause {
    lits: Vec<Lit>,
}

/// The CDCL solver. One-shot: load a [`Cnf`], call [`Solver::solve`].
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<u32>>,
    assigns: Vec<u8>,
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: BinaryHeap<HeapEntry>,
    seen: Vec<bool>,
    stats: SolverStats,
    ok: bool,
}

impl Solver {
    /// Loads a formula. Clauses are normalized on the way in: duplicate
    /// literals dropped, tautologies skipped, empty clauses and
    /// contradicting units mark the instance trivially unsat.
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let n = cnf.num_vars() as usize;
        let mut s = Solver {
            clauses: Vec::with_capacity(cnf.num_clauses()),
            watches: vec![Vec::new(); 2 * n],
            assigns: vec![UNDEF; n],
            phase: vec![false; n],
            level: vec![0; n],
            reason: vec![NO_REASON; n],
            trail: Vec::with_capacity(n),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; n],
            var_inc: 1.0,
            order: BinaryHeap::with_capacity(n),
            seen: vec![false; n],
            stats: SolverStats::default(),
            ok: true,
        };
        s.stats.clauses = cnf.num_clauses() as u64;
        for clause in cnf.clauses() {
            if !s.add_clause(clause) {
                s.ok = false;
                break;
            }
        }
        for v in 0..n as Var {
            s.order.push(HeapEntry { act: 0.0, var: v });
        }
        s
    }

    /// The work counters accumulated so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    fn value(&self, l: Lit) -> Option<bool> {
        match self.assigns[l.var() as usize] {
            UNDEF => None,
            a => Some((a == 1) != l.is_neg()),
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Normalizes and installs one input clause; false if it makes the
    /// instance trivially unsat.
    fn add_clause(&mut self, clause: &[Lit]) -> bool {
        let mut lits: Vec<Lit> = Vec::with_capacity(clause.len());
        for &l in clause {
            if lits.contains(&l.negate()) {
                return true; // tautology
            }
            if !lits.contains(&l) {
                lits.push(l);
            }
        }
        match lits.len() {
            0 => false,
            1 => match self.value(lits[0]) {
                Some(true) => true,
                Some(false) => false,
                None => {
                    self.enqueue(lits[0], NO_REASON);
                    true
                }
            },
            _ => {
                let cref = self.clauses.len() as u32;
                self.watches[lits[0].index()].push(cref);
                self.watches[lits[1].index()].push(cref);
                self.clauses.push(Clause { lits });
                true
            }
        }
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        let v = l.var() as usize;
        debug_assert_eq!(self.assigns[v], UNDEF);
        self.assigns[v] = u8::from(!l.is_neg());
        self.phase[v] = !l.is_neg();
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Propagates everything queued; returns the conflicting clause if
    /// one arises.
    fn propagate(&mut self) -> Option<u32> {
        let mut conflict = None;
        while conflict.is_none() && self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = p.negate();
            let mut ws = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut kept = 0;
            let mut i = 0;
            'clauses: while i < ws.len() {
                let cref = ws[i];
                i += 1;
                if conflict.is_some() {
                    ws[kept] = cref;
                    kept += 1;
                    continue;
                }
                // Ensure the just-falsified watch sits at position 1.
                if self.clauses[cref as usize].lits[0] == false_lit {
                    self.clauses[cref as usize].lits.swap(0, 1);
                }
                let first = self.clauses[cref as usize].lits[0];
                if self.value(first) == Some(true) {
                    ws[kept] = cref;
                    kept += 1;
                    continue;
                }
                let len = self.clauses[cref as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref as usize].lits[k];
                    if self.value(lk) != Some(false) {
                        self.clauses[cref as usize].lits.swap(1, k);
                        self.watches[lk.index()].push(cref);
                        continue 'clauses;
                    }
                }
                // No replacement watch: unit under the prefix, or conflict.
                ws[kept] = cref;
                kept += 1;
                if self.value(first) == Some(false) {
                    conflict = Some(cref);
                } else {
                    self.enqueue(first, cref);
                }
            }
            ws.truncate(kept);
            debug_assert!(self.watches[false_lit.index()].is_empty());
            self.watches[false_lit.index()] = ws;
        }
        conflict
    }

    fn bump(&mut self, v: Var) {
        let a = &mut self.activity[v as usize];
        *a += self.var_inc;
        if *a > 1e100 {
            for act in &mut self.activity {
                *act *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.assigns[v as usize] == UNDEF {
            self.order.push(HeapEntry {
                act: self.activity[v as usize],
                var: v,
            });
        }
    }

    /// First-UIP conflict analysis: resolves the conflict clause
    /// backwards along the trail until exactly one literal of the
    /// current decision level remains. Returns the learned clause
    /// (asserting literal first) and the backjump level.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![Lit::pos(0)]; // slot for the UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut cref = confl;
        let mut trail_idx = self.trail.len();
        loop {
            let start = usize::from(p.is_some()); // skip lits[0] except first round
            let len = self.clauses[cref as usize].lits.len();
            for k in start..len {
                let q = self.clauses[cref as usize].lits[k];
                let v = q.var();
                if !self.seen[v as usize] && self.level[v as usize] > 0 {
                    self.seen[v as usize] = true;
                    self.bump(v);
                    if self.level[v as usize] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Walk the trail back to the next marked literal.
            loop {
                trail_idx -= 1;
                if self.seen[self.trail[trail_idx].var() as usize] {
                    break;
                }
            }
            let q = self.trail[trail_idx];
            self.seen[q.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                learned[0] = q.negate();
                break;
            }
            cref = self.reason[q.var() as usize];
            debug_assert_ne!(cref, NO_REASON);
            p = Some(q);
        }
        for l in &learned[1..] {
            self.seen[l.var() as usize] = false;
        }
        // Backjump to the second-highest level in the clause; put that
        // literal at position 1 so it is watched.
        let mut bj = 0;
        if learned.len() > 1 {
            let mut max_i = 1;
            for i in 2..learned.len() {
                if self.level[learned[i].var() as usize] > self.level[learned[max_i].var() as usize]
                {
                    max_i = i;
                }
            }
            learned.swap(1, max_i);
            bj = self.level[learned[1].var() as usize];
        }
        (learned, bj)
    }

    fn cancel_until(&mut self, lvl: u32) {
        while self.decision_level() > lvl {
            let lim = self.trail_lim.pop().expect("level to unwind");
            for &l in &self.trail[lim..] {
                let v = l.var();
                self.assigns[v as usize] = UNDEF;
                self.reason[v as usize] = NO_REASON;
                self.order.push(HeapEntry {
                    act: self.activity[v as usize],
                    var: v,
                });
            }
            self.trail.truncate(lim);
        }
        self.qhead = self.qhead.min(self.trail.len());
    }

    fn decide(&mut self) -> bool {
        while let Some(e) = self.order.pop() {
            if self.assigns[e.var as usize] == UNDEF {
                self.trail_lim.push(self.trail.len());
                self.stats.decisions += 1;
                let l = if self.phase[e.var as usize] {
                    Lit::pos(e.var)
                } else {
                    Lit::neg(e.var)
                };
                self.enqueue(l, NO_REASON);
                return true;
            }
        }
        false
    }

    /// Runs the search. `budget` is called with the number of conflicts
    /// analyzed since the previous call; returning `false` stops the
    /// solve with [`SolveOutcome::Interrupted`].
    pub fn solve(&mut self, budget: &mut dyn FnMut(u64) -> bool) -> SolveOutcome {
        if !self.ok {
            return SolveOutcome::Unsat;
        }
        let mut restart_limit = 100u64;
        let mut conflicts_since_restart = 0u64;
        let mut unbilled_conflicts = 0u64;
        loop {
            match self.propagate() {
                Some(confl) => {
                    self.stats.conflicts += 1;
                    conflicts_since_restart += 1;
                    unbilled_conflicts += 1;
                    if self.decision_level() == 0 {
                        return SolveOutcome::Unsat;
                    }
                    let (learned, bj) = self.analyze(confl);
                    self.cancel_until(bj);
                    self.stats.learned += 1;
                    let asserting = learned[0];
                    if learned.len() == 1 {
                        self.enqueue(asserting, NO_REASON);
                    } else {
                        let cref = self.clauses.len() as u32;
                        self.watches[learned[0].index()].push(cref);
                        self.watches[learned[1].index()].push(cref);
                        self.clauses.push(Clause { lits: learned });
                        self.enqueue(asserting, cref);
                    }
                    self.var_inc *= 1.0 / 0.95;
                    if unbilled_conflicts >= 256 {
                        if !budget(unbilled_conflicts) {
                            return SolveOutcome::Interrupted;
                        }
                        unbilled_conflicts = 0;
                    }
                    if conflicts_since_restart >= restart_limit {
                        self.stats.restarts += 1;
                        restart_limit += restart_limit / 2;
                        conflicts_since_restart = 0;
                        self.cancel_until(0);
                    }
                }
                None => {
                    if !self.decide() {
                        let _ = budget(unbilled_conflicts);
                        let model = self
                            .assigns
                            .iter()
                            .map(|&a| {
                                debug_assert_ne!(a, UNDEF);
                                a == 1
                            })
                            .collect();
                        return SolveOutcome::Sat(model);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: i32) -> Lit {
        let v = (i.unsigned_abs() - 1) as Var;
        if i < 0 {
            Lit::neg(v)
        } else {
            Lit::pos(v)
        }
    }

    fn solve_clauses(num_vars: u32, clauses: &[&[i32]]) -> SolveOutcome {
        let mut cnf = Cnf::new();
        for _ in 0..num_vars {
            cnf.fresh();
        }
        for c in clauses {
            cnf.add(c.iter().map(|&i| lit(i)).collect());
        }
        Solver::from_cnf(&cnf).solve(&mut |_| true)
    }

    fn check_model(num_vars: u32, clauses: &[&[i32]]) {
        match solve_clauses(num_vars, clauses) {
            SolveOutcome::Sat(m) => {
                for c in clauses {
                    assert!(
                        c.iter().any(|&i| {
                            let v = (i.unsigned_abs() - 1) as usize;
                            (i > 0) == m[v]
                        }),
                        "model must satisfy {c:?}"
                    );
                }
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn trivial_sat_and_unsat() {
        check_model(2, &[&[1, 2], &[-1, 2], &[1, -2]]);
        assert!(matches!(
            solve_clauses(1, &[&[1], &[-1]]),
            SolveOutcome::Unsat
        ));
        assert!(matches!(solve_clauses(0, &[&[]]), SolveOutcome::Unsat));
    }

    #[test]
    fn unit_chains_propagate() {
        // x1 → x2 → x3 → x4, x1 forced.
        check_model(4, &[&[1], &[-1, 2], &[-2, 3], &[-3, 4]]);
    }

    /// Pigeonhole PHP(4,3): 4 pigeons, 3 holes — classically UNSAT and
    /// requires genuine conflict-driven search, not just propagation.
    #[test]
    fn pigeonhole_unsat() {
        let mut cnf = Cnf::new();
        let var = |p: usize, h: usize| (p * 3 + h) as Var;
        for _ in 0..12 {
            cnf.fresh();
        }
        for p in 0..4 {
            cnf.add((0..3).map(|h| Lit::pos(var(p, h))).collect());
        }
        for h in 0..3 {
            for p1 in 0..4 {
                for p2 in p1 + 1..4 {
                    cnf.add(vec![Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
                }
            }
        }
        let mut s = Solver::from_cnf(&cnf);
        assert!(matches!(s.solve(&mut |_| true), SolveOutcome::Unsat));
        assert!(s.stats().conflicts > 0, "PHP needs real search");
    }

    /// Random 3-SAT at sub-threshold density, cross-checked against the
    /// formula (SAT models verified) — a smoke test for the watch and
    /// learning machinery on non-structured instances.
    #[test]
    fn random_3sat_models_verify() {
        // Deterministic LCG so the test is reproducible.
        let mut seed = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        for round in 0..20 {
            let n = 20 + (round % 5);
            let m = n * 3;
            let mut cnf = Cnf::new();
            for _ in 0..n {
                cnf.fresh();
            }
            let mut clauses = Vec::new();
            for _ in 0..m {
                let mut c = Vec::new();
                while c.len() < 3 {
                    let v = next() % n;
                    let l = if next() % 2 == 0 {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    };
                    if !c.contains(&l) && !c.contains(&l.negate()) {
                        c.push(l);
                    }
                }
                clauses.push(c.clone());
                cnf.add(c);
            }
            if let SolveOutcome::Sat(model) = Solver::from_cnf(&cnf).solve(&mut |_| true) {
                for c in &clauses {
                    assert!(c.iter().any(|l| model[l.var() as usize] != l.is_neg()));
                }
            }
            // UNSAT is acceptable at this density; no oracle to compare.
        }
    }

    #[test]
    fn interrupt_stops_search() {
        // A hard-enough instance that at least one budget callback fires.
        let mut cnf = Cnf::new();
        let var = |p: usize, h: usize| (p * 6 + h) as Var;
        for _ in 0..42 {
            cnf.fresh();
        }
        for p in 0..7 {
            cnf.add((0..6).map(|h| Lit::pos(var(p, h))).collect());
        }
        for h in 0..6 {
            for p1 in 0..7 {
                for p2 in p1 + 1..7 {
                    cnf.add(vec![Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
                }
            }
        }
        let mut s = Solver::from_cnf(&cnf);
        let outcome = s.solve(&mut |_| false);
        assert!(matches!(
            outcome,
            SolveOutcome::Interrupted | SolveOutcome::Unsat
        ));
    }
}
