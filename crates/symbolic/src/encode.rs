//! Bounded model checking: bit-blasting a [`CompiledModel`] +
//! [`CompiledProperty`] into CNF at a fixed unrolling bound `K`.
//!
//! # Encoding
//!
//! State variable `v` with domain size `|D_v|` becomes one-hot booleans
//! `x[t][v][d]` per time step `t ∈ 0..=K` (at-least-one clause plus a
//! ladder at-most-one per `(t, v)`). Initial states constrain `t = 0` to
//! the declared initial values. Each step `t ∈ 0..K` gets one selector
//! per non-excluded command plus a *stutter* selector, under an
//! exactly-one constraint:
//!
//! * `c[t][j] → guard_j(t)` (guards translated by Tseitin, full `⟺`);
//! * `c[t][j] → x[t+1][v][d]` per update `(v, d)` of command `j`;
//! * `stutter[t] → ¬guard_j(t)` for every non-excluded `j` — the
//!   stutter fires exactly where the explicit engine synthesizes its
//!   deadlock self-loop, and nowhere else;
//! * frame: `x[t][v][d] → x[t+1][v][d] ∨ ⋁ {c[t][j] : j updates v}` —
//!   a value persists unless *some* selected command writes the
//!   variable (explanation-style frame axioms, one clause per
//!   `(t, v, d)` instead of per command pair).
//!
//! The CEGAR exclusion mask is honoured structurally: excluded commands
//! get no selector and do not appear in the stutter's guard-negation
//! list, which reproduces `product_bfs`'s masked semantics exactly.
//!
//! # Property schemas (violation = satisfying assignment)
//!
//! * **Invariant** — `⋁_t ¬holds(t)`; **Reachable** — `⋁_t goal(t)`.
//! * **Precedence** — prefix flags `nb[t]` ("no `requires_before` seen
//!   through `t`", one-directional: `nb[t] → nb[t-1] ∧ ¬before(t)`) and
//!   `v[t] → event(t) ∧ nb[t]`, asserting `⋁_t v[t]`.
//! * **Response** — a lasso: loop selectors `L[l]` (`l < K`, at least
//!   one) with `L[l] → s_l = s_K`; pending flags
//!   `p[t] → (p[t-1] ∨ trigger(t)) ∧ ¬response(t)` held true along the
//!   loop (`L[l] → p[t]` for `t ∈ [l, K]`); every fairness constraint
//!   satisfied somewhere on the loop
//!   (`L[l] → ⋁_{t ∈ (l, K]} fair(t)`). One-directional pending
//!   definitions are sound: asserting `p` along the loop forces a real
//!   trigger with no discharging response into the path itself.
//!
//! The engine is **refutation-only**: SAT decodes to a counterexample
//! (replay-validated in [`crate::replay`] before anything escapes);
//! UNSAT means *no violation within `K` steps* — reported as
//! [`BmcAnswer::BoundReached`], never as a proof.

use crate::cnf::{Cnf, Lit};
use crate::solver::{SolveOutcome, Solver, SolverStats};
use procheck_ident::{CmdId, CmdIdSet};
use procheck_smv::budget::BudgetMeter;
use procheck_smv::checker::{CExpr, CProp, CheckError, CompiledModel, CompiledProperty};
use procheck_smv::reach::Value;

/// A decoded bounded path: dense states plus the command fired into
/// each state (`None` = stutter; index 0 is the initial state and has
/// no command).
#[derive(Debug, Clone)]
pub struct BmcPath {
    /// States `s_0..s_n` as dense value vectors.
    pub states: Vec<Vec<Value>>,
    /// `fired[t]` is the command producing `states[t + 1]`.
    pub fired: Vec<Option<CmdId>>,
    /// Loop start for response lassos (`states[lasso_start] ==
    /// states.last()`); `None` for finite prefixes.
    pub lasso_start: Option<usize>,
}

/// The bounded engine's raw answer.
#[derive(Debug)]
pub enum BmcAnswer {
    /// A violating path was found and decoded.
    Violation(BmcPath),
    /// Every behaviour of length ≤ bound is violation-free.
    BoundReached(usize),
}

/// Runs one bounded check of `property` on `model` with the commands in
/// `excluded` removed, at unrolling bound `bound`. Solver work counters
/// accumulate into `stats`; conflicts are charged against `meter`.
///
/// # Errors
///
/// [`CheckError::Budget`] when the meter trips mid-solve.
pub fn bmc_check(
    model: &CompiledModel,
    property: &CompiledProperty,
    excluded: &CmdIdSet,
    bound: usize,
    meter: &BudgetMeter,
    stats: &mut SolverStats,
) -> Result<BmcAnswer, CheckError> {
    // Probe before encoding: an already-tripped meter (zero deadline,
    // exhausted run-level cap) must degrade the check, not let a cheap
    // solve slip through between billing points.
    if meter.is_limited() {
        meter.charge_and_probe(0).map_err(CheckError::Budget)?;
    }
    let is_response = matches!(property.kind(), CProp::Response { .. });
    // A lasso needs at least one real step to close a loop.
    if is_response && bound == 0 {
        return Ok(BmcAnswer::BoundReached(0));
    }
    let k = bound;
    let mut enc = Encoder::new(model, excluded, k);
    enc.encode_transitions();
    let extras = enc.encode_property(property);
    let mut solver = Solver::from_cnf(&enc.cnf);
    let mut budget_err = None;
    let outcome = solver.solve(&mut |conflicts| {
        if !meter.is_limited() {
            return true;
        }
        match meter.charge_and_probe(conflicts) {
            Ok(()) => true,
            Err(e) => {
                budget_err = Some(e);
                false
            }
        }
    });
    stats.absorb(solver.stats());
    match outcome {
        SolveOutcome::Unsat => Ok(BmcAnswer::BoundReached(k)),
        SolveOutcome::Interrupted => Err(CheckError::Budget(
            budget_err.expect("interrupt implies a tripped meter"),
        )),
        SolveOutcome::Sat(assignment) => {
            let path = enc.decode(&assignment, property, &extras)?;
            Ok(BmcAnswer::Violation(path))
        }
    }
}

/// Per-property auxiliary literals the decoder needs back.
struct PropertyExtras {
    /// Response loop selectors `L[l]`, indexed by `l`.
    loop_selectors: Vec<Lit>,
}

struct Encoder<'m> {
    model: &'m CompiledModel,
    k: usize,
    /// Non-excluded command indices, in declaration order.
    enabled: Vec<usize>,
    cnf: Cnf,
    /// `state[t][v][d]`: one-hot value literals.
    state: Vec<Vec<Vec<Lit>>>,
    /// `selector[t][j]` for `j < enabled.len()`, then the stutter
    /// selector last.
    selectors: Vec<Vec<Lit>>,
    true_lit: Lit,
}

impl<'m> Encoder<'m> {
    fn new(model: &'m CompiledModel, excluded: &CmdIdSet, k: usize) -> Self {
        let mut cnf = Cnf::new();
        let true_lit = Lit::pos(cnf.fresh());
        cnf.add(vec![true_lit]);
        let enabled: Vec<usize> = (0..model.commands().len())
            .filter(|&j| !excluded.contains(CmdId::new(j)))
            .collect();
        let mut state = Vec::with_capacity(k + 1);
        for _ in 0..=k {
            let step: Vec<Vec<Lit>> = model
                .vars()
                .iter()
                .map(|v| (0..v.domain.len()).map(|_| Lit::pos(cnf.fresh())).collect())
                .collect();
            state.push(step);
        }
        // One-hot per (t, v).
        for step in &state {
            for values in step {
                cnf.exactly_one(values);
            }
        }
        // Initial states: t = 0 takes one of each variable's init values.
        for (v, var) in model.vars().iter().enumerate() {
            let init: Vec<Lit> = var.init.iter().map(|d| state[0][v][d.index()]).collect();
            cnf.add(init);
        }
        Encoder {
            model,
            k,
            enabled,
            cnf,
            state,
            selectors: Vec::new(),
            true_lit,
        }
    }

    /// Tseitin-translates `e` over step `t`'s state literals, returning
    /// a literal equivalent to the expression (full `⟺`).
    fn expr_lit(&mut self, e: &CExpr, t: usize) -> Lit {
        match e {
            CExpr::True => self.true_lit,
            CExpr::False => self.true_lit.negate(),
            CExpr::Eq(v, d) => self.state[t][v.index()][d.index()],
            CExpr::Ne(v, d) => self.state[t][v.index()][d.index()].negate(),
            CExpr::In(v, ds) => {
                if ds.is_empty() {
                    return self.true_lit.negate();
                }
                let lits: Vec<Lit> = ds
                    .iter()
                    .map(|d| self.state[t][v.index()][d.index()])
                    .collect();
                if lits.len() == 1 {
                    lits[0]
                } else {
                    self.cnf.or_lit(&lits)
                }
            }
            CExpr::And(xs) => {
                if xs.is_empty() {
                    return self.true_lit;
                }
                let lits: Vec<Lit> = xs.iter().map(|x| self.expr_lit(x, t)).collect();
                if lits.len() == 1 {
                    lits[0]
                } else {
                    self.cnf.and_lit(&lits)
                }
            }
            CExpr::Or(xs) => {
                if xs.is_empty() {
                    return self.true_lit.negate();
                }
                let lits: Vec<Lit> = xs.iter().map(|x| self.expr_lit(x, t)).collect();
                if lits.len() == 1 {
                    lits[0]
                } else {
                    self.cnf.or_lit(&lits)
                }
            }
            CExpr::Not(x) => self.expr_lit(x, t).negate(),
        }
    }

    fn encode_transitions(&mut self) {
        // `model` has lifetime 'm, decoupled from `&mut self`, so its
        // expressions can feed `expr_lit` without cloning.
        let model = self.model;
        let commands = model.commands();
        let enabled = self.enabled.clone();
        for t in 0..self.k {
            // Guard literals for this step, shared by the selector
            // implications and the stutter's negation list.
            let guards: Vec<Lit> = enabled
                .iter()
                .map(|&j| self.expr_lit(&commands[j].guard, t))
                .collect();
            let mut sels: Vec<Lit> = (0..enabled.len())
                .map(|_| Lit::pos(self.cnf.fresh()))
                .collect();
            let stutter = Lit::pos(self.cnf.fresh());
            // Selector semantics.
            for (jj, &j) in enabled.iter().enumerate() {
                let sel = sels[jj];
                self.cnf.add(vec![sel.negate(), guards[jj]]);
                for &(v, d) in &commands[j].updates {
                    let next = self.state[t + 1][v.index()][d.index()];
                    self.cnf.add(vec![sel.negate(), next]);
                }
            }
            for &g in &guards {
                self.cnf.add(vec![stutter.negate(), g.negate()]);
            }
            // Frame: a value persists unless a selected command writes
            // the variable.
            for (v, var) in model.vars().iter().enumerate() {
                let writers: Vec<Lit> = enabled
                    .iter()
                    .enumerate()
                    .filter(|&(_, &j)| commands[j].updates.iter().any(|(uv, _)| uv.index() == v))
                    .map(|(jj, _)| sels[jj])
                    .collect();
                for d in 0..var.domain.len() {
                    let mut clause = vec![self.state[t][v][d].negate(), self.state[t + 1][v][d]];
                    clause.extend_from_slice(&writers);
                    self.cnf.add(clause);
                }
            }
            sels.push(stutter);
            self.cnf.exactly_one(&sels);
            self.selectors.push(sels);
        }
    }

    fn encode_property(&mut self, property: &CompiledProperty) -> PropertyExtras {
        let mut extras = PropertyExtras {
            loop_selectors: Vec::new(),
        };
        match property.kind() {
            CProp::Invariant { holds } => {
                let bad: Vec<Lit> = (0..=self.k)
                    .map(|t| self.expr_lit(holds, t).negate())
                    .collect();
                self.cnf.add(bad);
            }
            CProp::Reachable { goal } => {
                let hits: Vec<Lit> = (0..=self.k).map(|t| self.expr_lit(goal, t)).collect();
                self.cnf.add(hits);
            }
            CProp::Precedence {
                event,
                requires_before,
            } => {
                let before = requires_before;
                let mut nb_prev: Option<Lit> = None;
                let mut violations = Vec::with_capacity(self.k + 1);
                for t in 0..=self.k {
                    let b = self.expr_lit(before, t);
                    let e = self.expr_lit(event, t);
                    let nb = Lit::pos(self.cnf.fresh());
                    self.cnf.add(vec![nb.negate(), b.negate()]);
                    if let Some(prev) = nb_prev {
                        self.cnf.add(vec![nb.negate(), prev]);
                    }
                    nb_prev = Some(nb);
                    let v = Lit::pos(self.cnf.fresh());
                    self.cnf.add(vec![v.negate(), e]);
                    self.cnf.add(vec![v.negate(), nb]);
                    violations.push(v);
                }
                self.cnf.add(violations);
            }
            CProp::Response { trigger, response } => {
                // Pending obligation, one-directional:
                // p[t] → (p[t-1] ∨ trigger(t)) ∧ ¬response(t).
                let mut pending = Vec::with_capacity(self.k + 1);
                let mut p_prev: Option<Lit> = None;
                for t in 0..=self.k {
                    let trig = self.expr_lit(trigger, t);
                    let resp = self.expr_lit(response, t);
                    let p = Lit::pos(self.cnf.fresh());
                    self.cnf.add(vec![p.negate(), resp.negate()]);
                    match p_prev {
                        None => self.cnf.add(vec![p.negate(), trig]),
                        Some(prev) => self.cnf.add(vec![p.negate(), prev, trig]),
                    }
                    p_prev = Some(p);
                    pending.push(p);
                }
                // Fairness witnesses per step (t ≥ 1: loop states).
                let model = self.model;
                let fairness: Vec<Vec<Lit>> = model
                    .fairness_exprs()
                    .iter()
                    .map(|f| (1..=self.k).map(|t| self.expr_lit(f, t)).collect())
                    .collect();
                let loops: Vec<Lit> = (0..self.k).map(|_| Lit::pos(self.cnf.fresh())).collect();
                for (l, &ll) in loops.iter().enumerate() {
                    // Loop closure: s_l = s_K (one direction suffices
                    // under one-hot).
                    for (v, var) in model.vars().iter().enumerate() {
                        for d in 0..var.domain.len() {
                            self.cnf.add(vec![
                                ll.negate(),
                                self.state[l][v][d].negate(),
                                self.state[self.k][v][d],
                            ]);
                        }
                    }
                    // Obligation held along the whole loop.
                    for &p in &pending[l..=self.k] {
                        self.cnf.add(vec![ll.negate(), p]);
                    }
                    // Every fairness constraint satisfied on the loop.
                    for f in &fairness {
                        let mut clause = vec![ll.negate()];
                        clause.extend_from_slice(&f[l..]); // f[i] is step i+1
                        self.cnf.add(clause);
                    }
                }
                self.cnf.add(loops.clone());
                extras.loop_selectors = loops;
            }
        }
        extras
    }

    /// Reads the solver model back into a dense path and truncates it
    /// at the earliest violation (safety kinds) or annotates the loop
    /// (response).
    fn decode(
        &self,
        assignment: &[bool],
        property: &CompiledProperty,
        extras: &PropertyExtras,
    ) -> Result<BmcPath, CheckError> {
        let lit_true = |l: Lit| assignment[l.var() as usize] != l.is_neg();
        let mut states: Vec<Vec<Value>> = Vec::with_capacity(self.k + 1);
        for step in &self.state {
            let mut s = Vec::with_capacity(step.len());
            for values in step {
                let d = values.iter().position(|&l| lit_true(l)).ok_or_else(|| {
                    CheckError::BackendDivergence(
                        "bmc decode: one-hot state variable has no true value".into(),
                    )
                })?;
                s.push(d as Value);
            }
            states.push(s);
        }
        let mut fired: Vec<Option<CmdId>> = Vec::with_capacity(self.k);
        for sels in &self.selectors {
            let which = sels.iter().position(|&l| lit_true(l)).ok_or_else(|| {
                CheckError::BackendDivergence("bmc decode: step fired no selector".into())
            })?;
            fired.push(if which == self.enabled.len() {
                None
            } else {
                Some(CmdId::new(self.enabled[which]))
            });
        }
        match property.kind() {
            CProp::Invariant { holds } => {
                let t = (0..states.len())
                    .find(|&t| !holds.eval(&states[t]))
                    .ok_or_else(|| {
                        CheckError::BackendDivergence(
                            "bmc decode: SAT path has no invariant violation".into(),
                        )
                    })?;
                states.truncate(t + 1);
                fired.truncate(t);
                Ok(BmcPath {
                    states,
                    fired,
                    lasso_start: None,
                })
            }
            CProp::Reachable { goal } => {
                let t = (0..states.len())
                    .find(|&t| goal.eval(&states[t]))
                    .ok_or_else(|| {
                        CheckError::BackendDivergence(
                            "bmc decode: SAT path never reaches the goal".into(),
                        )
                    })?;
                states.truncate(t + 1);
                fired.truncate(t);
                Ok(BmcPath {
                    states,
                    fired,
                    lasso_start: None,
                })
            }
            CProp::Precedence {
                event,
                requires_before,
            } => {
                let mut clean = true;
                let mut hit = None;
                for (t, s) in states.iter().enumerate() {
                    clean = clean && !requires_before.eval(s);
                    if clean && event.eval(s) {
                        hit = Some(t);
                        break;
                    }
                }
                let t = hit.ok_or_else(|| {
                    CheckError::BackendDivergence(
                        "bmc decode: SAT path has no precedence violation".into(),
                    )
                })?;
                states.truncate(t + 1);
                fired.truncate(t);
                Ok(BmcPath {
                    states,
                    fired,
                    lasso_start: None,
                })
            }
            CProp::Response { .. } => {
                let l = extras
                    .loop_selectors
                    .iter()
                    .position(|&ll| lit_true(ll))
                    .ok_or_else(|| {
                        CheckError::BackendDivergence(
                            "bmc decode: response lasso selected no loop point".into(),
                        )
                    })?;
                Ok(BmcPath {
                    states,
                    fired,
                    lasso_start: Some(l),
                })
            }
        }
    }
}
