//! The symbolic soundness contract: every counterexample the BMC engine
//! emits is replayed, step by step, on the *source* compiled model
//! before it escapes the crate (ISSUE discipline mirrored from
//! `crates/smv/tests/reduction_prop.rs`). A path that fails replay is a
//! solver or encoder bug and surfaces as
//! [`CheckError::BackendDivergence`] — never as a verdict.

use crate::encode::BmcPath;
use procheck_ident::CmdIdSet;
use procheck_smv::checker::{CProp, CheckError, CompiledModel, CompiledProperty};
use procheck_smv::reach::{Value, STUTTER_CMD};
use procheck_smv::trace::{Counterexample, TraceStep};

fn divergence(msg: impl Into<String>) -> CheckError {
    CheckError::BackendDivergence(msg.into())
}

/// Validates a decoded path against the model's semantics and the
/// property's violation condition, then renders it as the
/// [`Counterexample`] shape the explicit engine produces.
///
/// # Errors
///
/// [`CheckError::BackendDivergence`] naming the first step (or
/// property condition) that fails to replay.
pub fn validate_and_render(
    model: &CompiledModel,
    property: &CompiledProperty,
    excluded: &CmdIdSet,
    path: &BmcPath,
) -> Result<Counterexample, CheckError> {
    if path.states.is_empty() {
        return Err(divergence("bmc replay: empty path"));
    }
    if path.fired.len() + 1 != path.states.len() {
        return Err(divergence(format!(
            "bmc replay: {} states but {} fired commands",
            path.states.len(),
            path.fired.len()
        )));
    }
    if !model.initial_states().contains(&path.states[0]) {
        return Err(divergence(
            "bmc replay: path does not start in an initial state",
        ));
    }
    let commands = model.commands();
    let enabled: Vec<usize> = (0..commands.len())
        .filter(|&j| !excluded.contains(procheck_ident::CmdId::new(j)))
        .collect();
    for (t, fired) in path.fired.iter().enumerate() {
        let prev = &path.states[t];
        let cur = &path.states[t + 1];
        match fired {
            None => {
                // Stutter: only legal when the masked model deadlocks.
                if prev != cur {
                    return Err(divergence(format!(
                        "bmc replay: stutter at step {} changes the state",
                        t + 1
                    )));
                }
                if let Some(&j) = enabled.iter().find(|&&j| commands[j].guard.eval(prev)) {
                    return Err(divergence(format!(
                        "bmc replay: stutter at step {} while `{}` is enabled",
                        t + 1,
                        commands[j].label.as_str()
                    )));
                }
            }
            Some(cmd) => {
                let j = cmd.index();
                if excluded.contains(*cmd) {
                    return Err(divergence(format!(
                        "bmc replay: excluded command `{}` fired at step {}",
                        commands[j].label.as_str(),
                        t + 1
                    )));
                }
                if !commands[j].guard.eval(prev) {
                    return Err(divergence(format!(
                        "bmc replay: guard of `{}` false at step {}",
                        commands[j].label.as_str(),
                        t + 1
                    )));
                }
                let mut expect: Vec<Value> = prev.clone();
                for &(v, d) in &commands[j].updates {
                    expect[v.index()] = d.index() as Value;
                }
                if &expect != cur {
                    return Err(divergence(format!(
                        "bmc replay: `{}` at step {} produces a different state",
                        commands[j].label.as_str(),
                        t + 1
                    )));
                }
            }
        }
    }
    validate_violation(model, property, path)?;
    Ok(render(model, path))
}

/// Checks that the replayed path actually violates the property, with
/// exactly the monitor semantics the explicit engine evaluates.
fn validate_violation(
    model: &CompiledModel,
    property: &CompiledProperty,
    path: &BmcPath,
) -> Result<(), CheckError> {
    let states = &path.states;
    let last = states.last().expect("non-empty path");
    match property.kind() {
        CProp::Invariant { holds } => {
            if holds.eval(last) {
                return Err(divergence(
                    "bmc replay: final state satisfies the invariant",
                ));
            }
        }
        CProp::Reachable { goal } => {
            if !goal.eval(last) {
                return Err(divergence("bmc replay: final state misses the goal"));
            }
        }
        CProp::Precedence {
            event,
            requires_before,
        } => {
            if !event.eval(last) {
                return Err(divergence("bmc replay: final state is not the event"));
            }
            if states.iter().any(|s| requires_before.eval(s)) {
                return Err(divergence(
                    "bmc replay: prerequisite occurred before the event",
                ));
            }
        }
        CProp::Response { trigger, response } => {
            let l = path
                .lasso_start
                .ok_or_else(|| divergence("bmc replay: response violation without a lasso"))?;
            if l >= states.len() - 1 {
                return Err(divergence("bmc replay: degenerate lasso"));
            }
            if states[l] != *last {
                return Err(divergence("bmc replay: lasso does not close"));
            }
            // Pending monitor along the path:
            // p' = (p ∨ trigger(s')) ∧ ¬response(s').
            let mut p = trigger.eval(&states[0]) && !response.eval(&states[0]);
            let mut pending_at = vec![p];
            for s in &states[1..] {
                p = (p || trigger.eval(s)) && !response.eval(s);
                pending_at.push(p);
            }
            if !pending_at[l..].iter().all(|&p| p) {
                return Err(divergence(
                    "bmc replay: obligation discharged inside the loop",
                ));
            }
            for (i, f) in model.fairness_exprs().iter().enumerate() {
                if !states[l + 1..].iter().any(|s| f.eval(s)) {
                    return Err(divergence(format!(
                        "bmc replay: fairness constraint {i} unmet on the loop"
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Renders the dense path in the explicit engine's trace format: first
/// step labelled `init`, then the fired command's label (or `stutter`).
fn render(model: &CompiledModel, path: &BmcPath) -> Counterexample {
    let mut steps = Vec::with_capacity(path.states.len());
    steps.push(TraceStep {
        label: "init".to_string(),
        state: model.assignment(&path.states[0]),
    });
    for (t, fired) in path.fired.iter().enumerate() {
        let label = match fired {
            None => model.label_of(STUTTER_CMD).to_string(),
            Some(cmd) => model.label_of(cmd.index() as u32).to_string(),
        };
        steps.push(TraceStep {
            label,
            state: model.assignment(&path.states[t + 1]),
        });
    }
    Counterexample {
        steps,
        lasso_start: path.lasso_start,
    }
}
