//! Propositional layer: literals, clauses, and a CNF builder with the
//! Tseitin and cardinality helpers the BMC encoder leans on.
//!
//! Literal representation follows the DIMACS-solver convention: variable
//! `v`'s positive literal is `2v`, its negation `2v + 1`, so a literal's
//! variable and sign are one shift/mask away and literals index watch
//! lists directly.

use std::fmt;

/// A propositional variable (dense index).
pub type Var = u32;

/// A literal: variable plus sign, packed as `var << 1 | negated`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit((v << 1) | 1)
    }

    /// The literal's variable.
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// True if this is the negated polarity.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The opposite-polarity literal of the same variable.
    #[must_use]
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index usable for per-literal tables (watch lists).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "-{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

/// A CNF formula under construction: a variable allocator plus a clause
/// list. Clauses are kept exactly as added (the solver normalizes).
#[derive(Default)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// An empty formula.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn fresh(&mut self) -> Var {
        let v = self.num_vars;
        self.num_vars += 1;
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of clauses added so far.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses, for the solver to load.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Adds one clause (a disjunction of literals).
    pub fn add(&mut self, clause: Vec<Lit>) {
        self.clauses.push(clause);
    }

    /// Adds clauses forcing *at most one* of `lits` true, using the
    /// sequential (ladder) encoding: `n - 1` auxiliary variables and
    /// `3n - 4` ternary-or-smaller clauses instead of the quadratic
    /// pairwise expansion. Small sets stay pairwise (no aux vars).
    pub fn at_most_one(&mut self, lits: &[Lit]) {
        if lits.len() <= 1 {
            return;
        }
        if lits.len() <= 4 {
            for i in 0..lits.len() {
                for j in i + 1..lits.len() {
                    self.add(vec![lits[i].negate(), lits[j].negate()]);
                }
            }
            return;
        }
        // Ladder: r_i = "one of lits[..=i] is true".
        let n = lits.len();
        let r: Vec<Lit> = (0..n - 1).map(|_| Lit::pos(self.fresh())).collect();
        self.add(vec![lits[0].negate(), r[0]]);
        for i in 1..n - 1 {
            self.add(vec![lits[i].negate(), r[i]]);
            self.add(vec![r[i - 1].negate(), r[i]]);
            self.add(vec![lits[i].negate(), r[i - 1].negate()]);
        }
        self.add(vec![lits[n - 1].negate(), r[n - 2].negate()]);
    }

    /// Adds clauses forcing *exactly one* of `lits` true.
    pub fn exactly_one(&mut self, lits: &[Lit]) {
        self.add(lits.to_vec());
        self.at_most_one(lits);
    }

    /// Allocates `a` with `a ⟺ l₁ ∧ … ∧ lₙ` (full Tseitin equivalence).
    pub fn and_lit(&mut self, lits: &[Lit]) -> Lit {
        let a = Lit::pos(self.fresh());
        let mut long: Vec<Lit> = lits.iter().map(|l| l.negate()).collect();
        long.push(a);
        for &l in lits {
            self.add(vec![a.negate(), l]);
        }
        self.add(long);
        a
    }

    /// Allocates `a` with `a ⟺ l₁ ∨ … ∨ lₙ` (full Tseitin equivalence).
    pub fn or_lit(&mut self, lits: &[Lit]) -> Lit {
        let a = Lit::pos(self.fresh());
        let mut long: Vec<Lit> = lits.to_vec();
        long.push(a.negate());
        for &l in lits {
            self.add(vec![a, l.negate()]);
        }
        self.add(long);
        a
    }
}
