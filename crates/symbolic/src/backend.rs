//! [`CheckBackend`] implementation over the BMC engine.
//!
//! The backend owns the bound `k` and a telemetry handle; each `answer`
//! call encodes, solves, replay-validates, and records `backend.*`
//! solver counters. Per the crate contract, a SAT answer only becomes a
//! verdict after [`crate::replay`] confirms the decoded path on the
//! source model, and an UNSAT answer is always the weaker
//! [`BackendVerdict::BoundReached`] — never a proof.

use crate::encode::{bmc_check, BmcAnswer};
use crate::replay::validate_and_render;
use crate::solver::SolverStats;
use procheck_ident::CmdIdSet;
use procheck_smv::budget::BudgetMeter;
use procheck_smv::checker::{
    CProp, CheckError, CompiledModel, CompiledProperty, QueryStats, Verdict,
};
use procheck_smv::{BackendVerdict, CheckBackend};
use procheck_telemetry::Collector;

/// Bounded-model-checking backend: bit-blasts the compiled model into
/// CNF and solves with the in-repo CDCL solver, for paths of length up
/// to `bound` transitions.
pub struct BmcBackend {
    /// Maximum number of transitions in any considered path.
    pub bound: usize,
    /// Telemetry sink for `backend.*` solver counters.
    pub collector: Collector,
}

impl BmcBackend {
    /// A backend with the given bound and a disabled telemetry handle.
    pub fn new(bound: usize) -> Self {
        BmcBackend {
            bound,
            collector: Collector::disabled(),
        }
    }

    /// A backend recording solver counters on `collector`.
    pub fn with_collector(bound: usize, collector: Collector) -> Self {
        BmcBackend { bound, collector }
    }

    fn record(&self, stats: &SolverStats, bound_reached: bool) {
        self.collector.add("backend.clauses", stats.clauses);
        self.collector.add("backend.decisions", stats.decisions);
        self.collector
            .add("backend.propagations", stats.propagations);
        self.collector.add("backend.conflicts", stats.conflicts);
        self.collector.add("backend.restarts", stats.restarts);
        self.collector.add("backend.learned", stats.learned);
        if bound_reached {
            self.collector.add("backend.bound_reached", 1);
        }
    }
}

impl CheckBackend for BmcBackend {
    fn name(&self) -> &'static str {
        "bmc"
    }

    fn answer(
        &self,
        model: &CompiledModel,
        property: &CompiledProperty,
        excluded: &CmdIdSet,
        _limit: usize,
        meter: &BudgetMeter,
        stats: &mut QueryStats,
    ) -> Result<BackendVerdict, CheckError> {
        let mut solver_stats = SolverStats::default();
        let answer = bmc_check(
            model,
            property,
            excluded,
            self.bound,
            meter,
            &mut solver_stats,
        );
        // Decisions stand in for interned states in the shared query
        // accounting: both count "search work the engine performed".
        stats.product_states += solver_stats.decisions;
        stats.transitions += solver_stats.propagations;
        match answer {
            Ok(BmcAnswer::Violation(path)) => {
                self.record(&solver_stats, false);
                let ce = validate_and_render(model, property, excluded, &path)?;
                let verdict = match property.kind() {
                    CProp::Reachable { .. } => Verdict::Reachable(ce),
                    _ => Verdict::Violated(ce),
                };
                Ok(BackendVerdict::Definite(verdict))
            }
            Ok(BmcAnswer::BoundReached(k)) => {
                self.record(&solver_stats, true);
                Ok(BackendVerdict::BoundReached(k))
            }
            Err(e) => {
                self.record(&solver_stats, false);
                Err(e)
            }
        }
    }
}
