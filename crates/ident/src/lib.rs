//! Workspace-wide symbol interning (DESIGN.md §5d).
//!
//! The pipeline is one dataflow — log → FSM → composed threat model →
//! model checking → CEGAR — and every layer speaks the same small
//! vocabulary: state names, message and event labels, variable names and
//! enum domains, adversary command labels. Carrying that vocabulary as
//! owned `String`s meant re-hashing and re-cloning the same few hundred
//! words at every layer boundary. This crate is the shared currency
//! instead: a process-global, append-only [`SymTable`] maps each
//! distinct string to a [`Sym`] (a `u32` handle), and the rest of the
//! workspace passes `Sym`s — `Copy`, 4 bytes, equality and hashing by
//! id — resolving back to `&'static str` only at serialization edges
//! (reports, DOT, SMV emission, traces).
//!
//! Two design points keep the refactor invisible outside the workspace:
//!
//! * **Ordering is lexicographic.** `Sym: Ord` compares the *resolved
//!   strings*, not the ids, so a `BTreeSet<Sym>` iterates in exactly the
//!   order a `BTreeSet<String>` did — domain declarations, DOT edges,
//!   and refinement sequences keep their historical byte-identical
//!   order. (Equality by id and order by string are mutually consistent
//!   because the table never interns one string twice.)
//! * **Resolution is `&'static`.** Interned strings are leaked once;
//!   [`Sym::as_str`] hands out `&'static str`, so no layer ever needs a
//!   lifetime tied to the table.
//!
//! The typed wrappers come in two families. [`StateId`] and [`MsgId`]
//! are `Sym` newtypes that keep FSM state names and message/action
//! labels from mixing. [`VarId`], [`ValId`], and [`CmdId`] are *dense
//! per-model indices* — positions in a compiled model's variable list,
//! a variable's domain, and the command list — the currency of the
//! checker's compiled expressions and of [`CmdIdSet`] exclusion masks.

pub mod fxhash;

use fxhash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{OnceLock, RwLock, RwLockReadGuard};

/// The interning table: distinct strings in, stable `u32` handles out.
///
/// One process-global instance lives behind [`Sym::intern`]; the type is
/// public so tests and tools can build private tables, but workspace
/// code should go through [`Sym`]. Append-only — nothing is ever
/// removed, so handles stay valid for the process lifetime.
#[derive(Debug, Default)]
pub struct SymTable {
    map: FxHashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

impl SymTable {
    /// An empty table.
    pub fn new() -> Self {
        SymTable::default()
    }

    /// Interns `s`, returning the existing handle when already present.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let owned: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(self.strings.len()).expect("symbol table overflow");
        self.strings.push(owned);
        self.map.insert(owned, id);
        id
    }

    /// Looks `s` up without interning it.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.map.get(s).copied()
    }

    /// Resolves a handle. Panics on a handle from another table.
    pub fn resolve(&self, id: u32) -> &'static str {
        self.strings[id as usize]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

fn global() -> &'static RwLock<SymTable> {
    static TABLE: OnceLock<RwLock<SymTable>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(SymTable::new()))
}

fn read_global() -> RwLockReadGuard<'static, SymTable> {
    global().read().unwrap_or_else(|e| e.into_inner())
}

/// Number of distinct symbols in the process-global table — the
/// `symbols_interned` telemetry total.
pub fn symbols_interned() -> u64 {
    read_global().len() as u64
}

/// An interned string: 4 bytes, `Copy`, equality and hashing by id,
/// *ordering by resolved string* (see the crate docs for why).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

impl Sym {
    /// Interns `s` in the process-global table.
    pub fn intern(s: &str) -> Sym {
        {
            // Fast path: almost every intern after warm-up is a re-read.
            let table = read_global();
            if let Some(id) = table.get(s) {
                return Sym(id);
            }
        }
        let mut table = global().write().unwrap_or_else(|e| e.into_inner());
        Sym(table.intern(s))
    }

    /// The interned string (leaked once, live for the process).
    pub fn as_str(self) -> &'static str {
        read_global().resolve(self.0)
    }

    /// The raw table index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            return std::cmp::Ordering::Equal;
        }
        self.as_str().cmp(other.as_str())
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::intern(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::intern(&s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Sym {
        Sym::intern(s)
    }
}

impl Serialize for Sym {}
impl<'de> Deserialize<'de> for Sym {}

macro_rules! sym_wrapper {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        pub struct $name(pub Sym);

        impl $name {
            /// Interns `s` as this kind of symbol.
            pub fn intern(s: &str) -> $name {
                $name(Sym::intern(s))
            }

            /// The underlying symbol.
            pub fn sym(self) -> Sym {
                self.0
            }

            /// The interned string.
            pub fn as_str(self) -> &'static str {
                self.0.as_str()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(&self.0, f)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(&self.0, f)
            }
        }
    };
}

sym_wrapper! {
    /// An interned FSM state name.
    StateId
}
sym_wrapper! {
    /// An interned message / event / action label.
    MsgId
}

macro_rules! dense_index {
    ($(#[$doc:meta])* $name:ident($repr:ty)) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        pub struct $name(pub $repr);

        impl $name {
            /// Wraps a dense index.
            pub fn new(i: usize) -> $name {
                $name(<$repr>::try_from(i).expect("dense index overflow"))
            }

            /// The index as a `usize`.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }
    };
}

dense_index! {
    /// Position of a variable in a compiled model's declaration list.
    VarId(u32)
}
dense_index! {
    /// Position of a value in one variable's declared domain.
    ValId(u16)
}
dense_index! {
    /// Position of a guarded command in a compiled model's command list.
    CmdId(u32)
}

/// A dense bitset over one model's [`CmdId`] space — the CEGAR
/// exclusion mask. Refining away an adversary command is one bit set;
/// querying the mask per edge during graph traversal is one bit test.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CmdIdSet {
    bits: Vec<u64>,
    count: usize,
}

impl CmdIdSet {
    /// An empty mask sized for `num_commands` commands.
    pub fn with_capacity(num_commands: usize) -> CmdIdSet {
        CmdIdSet {
            bits: vec![0; num_commands.div_ceil(64)],
            count: 0,
        }
    }

    /// Inserts a command id; returns `false` when already present.
    pub fn insert(&mut self, id: CmdId) -> bool {
        let (word, bit) = (id.index() / 64, id.index() % 64);
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        if self.bits[word] & mask != 0 {
            return false;
        }
        self.bits[word] |= mask;
        self.count += 1;
        true
    }

    /// True when the command id is in the mask.
    #[inline]
    pub fn contains(&self, id: CmdId) -> bool {
        self.bits
            .get(id.index() / 64)
            .is_some_and(|w| w & (1u64 << (id.index() % 64)) != 0)
    }

    /// Number of excluded commands.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when nothing is excluded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_and_resolves() {
        let a = Sym::intern("attach_request");
        let b = Sym::intern("attach_request");
        let c = Sym::intern("attach_accept");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "attach_request");
        assert_eq!(c.as_str(), "attach_accept");
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn ordering_is_lexicographic_not_by_id() {
        // Intern in reverse-lexicographic order so id order and string
        // order disagree.
        let z = Sym::intern("zzz_order_probe");
        let a = Sym::intern("aaa_order_probe");
        assert!(a < z, "Sym must order by resolved string");
        let set: std::collections::BTreeSet<Sym> = [z, a].into_iter().collect();
        let names: Vec<&str> = set.into_iter().map(Sym::as_str).collect();
        assert_eq!(names, vec!["aaa_order_probe", "zzz_order_probe"]);
    }

    #[test]
    fn display_and_debug_match_string_forms() {
        let s = Sym::intern("emm_registered");
        assert_eq!(format!("{s}"), "emm_registered");
        assert_eq!(format!("{s:?}"), "\"emm_registered\"");
        let st = StateId::intern("emm_registered");
        assert_eq!(format!("{st}"), "emm_registered");
        assert_eq!(st.sym(), s);
    }

    #[test]
    fn from_impls_intern() {
        let a: Sym = "from_probe".into();
        let b: Sym = String::from("from_probe").into();
        assert_eq!(a, b);
    }

    #[test]
    fn private_tables_are_independent() {
        let mut t = SymTable::new();
        assert!(t.is_empty());
        let x = t.intern("x");
        let y = t.intern("y");
        assert_eq!(t.intern("x"), x);
        assert_ne!(x, y);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(y), "y");
        assert_eq!(t.get("z"), None);
    }

    #[test]
    fn global_count_is_monotonic() {
        let before = symbols_interned();
        Sym::intern("monotonic_probe_unique_string");
        assert!(symbols_interned() > before || before > 0);
        let mid = symbols_interned();
        Sym::intern("monotonic_probe_unique_string");
        assert_eq!(symbols_interned(), mid, "re-interning adds nothing");
    }

    #[test]
    fn cmd_id_set_basics() {
        let mut set = CmdIdSet::with_capacity(70);
        assert!(set.is_empty());
        assert!(set.insert(CmdId::new(3)));
        assert!(set.insert(CmdId::new(69)));
        assert!(!set.insert(CmdId::new(3)), "double insert reports false");
        assert!(set.contains(CmdId::new(3)));
        assert!(set.contains(CmdId::new(69)));
        assert!(!set.contains(CmdId::new(4)));
        assert!(!set.contains(CmdId::new(500)), "out of range is absent");
        assert_eq!(set.len(), 2);
        // Growth past the initial capacity.
        assert!(set.insert(CmdId::new(130)));
        assert!(set.contains(CmdId::new(130)));
    }

    #[test]
    fn dense_indices_round_trip() {
        assert_eq!(VarId::new(7).index(), 7);
        assert_eq!(ValId::new(9).index(), 9);
        assert_eq!(CmdId::new(11).index(), 11);
    }
}
