//! In-repo FxHash-style hasher for the explicit-state hot path.
//!
//! State interning hashes millions of short `Vec<u16>` keys per check.
//! `std`'s default SipHash-1-3 is keyed and DoS-resistant, which buys
//! nothing here — keys are machine-generated value vectors, not
//! attacker-controlled input — and costs a long dependency chain per
//! word. This is the rustc-style multiply-rotate-xor folding hash:
//! one rotate, one xor, one multiply per 8-byte word.

use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` for [`FxHasher`] (zero-sized, `Default`-constructed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time folding hasher (the rustc/FxHash construction).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.fold(u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.fold(u64::from_ne_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_and_input_sensitive() {
        let a: Vec<u16> = vec![1, 2, 3, 4];
        let b: Vec<u16> = vec![1, 2, 3, 5];
        assert_eq!(hash_of(&a), hash_of(&a));
        assert_ne!(hash_of(&a), hash_of(&b));
        assert_ne!(hash_of(&a), hash_of(&vec![1u16, 2, 3]));
    }

    #[test]
    fn state_keys_spread_over_buckets() {
        // All 16-bit-pair states of a 32×32 grid must not collide much:
        // with 1024 keys, demand at least 1000 distinct 10-bit buckets'
        // worth of spread in the full 64-bit output.
        let mut seen = std::collections::HashSet::new();
        for x in 0u16..32 {
            for y in 0u16..32 {
                seen.insert(hash_of(&(vec![x, y], false)));
            }
        }
        assert!(seen.len() >= 1000, "only {} distinct hashes", seen.len());
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FxHashMap<Vec<u16>, u32> = FxHashMap::default();
        for i in 0u16..500 {
            m.insert(vec![i, i.wrapping_mul(3)], i as u32);
        }
        assert_eq!(m.len(), 500);
        assert_eq!(m[&vec![7u16, 21]], 7);
    }
}
