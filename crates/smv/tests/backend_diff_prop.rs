//! Differential property test across the [`CheckBackend`] seam: random
//! small models are checked by the explicit-state engine and the
//! bounded symbolic (BMC) engine, under random CEGAR-style exclusion
//! masks, and the answers must agree whenever agreement is decidable:
//!
//! * the BMC engine is refutation-only, so a `Definite` answer from it
//!   is always a violation/witness and must match the explicit verdict
//!   class, with a trace that replays step by step on the *source*
//!   model;
//! * a `BoundReached(k)` answer is consistent with an explicit pass,
//!   and with an explicit violation **only** when every explicit
//!   counterexample needs more than `k` transitions — the explicit
//!   engine's traces are shortest (BFS) for safety and
//!   shortest-prefix lassos for response, so an explicit trace within
//!   the bound that BMC misses is a completeness bug, not slack.
//!
//! This is the executable form of the Both-mode agreement table in the
//! pipeline (`procheck-core`), pinned here against adversarial models
//! rather than the curated registry.

use std::collections::BTreeMap;

use procheck_ident::Sym;
use procheck_smv::budget::BudgetMeter;
use procheck_smv::checker::{
    build_reach_graph_budgeted, check_on_graph, CheckStats, CompiledModel, Property, QueryStats,
    Verdict,
};
use procheck_smv::expr::Expr;
use procheck_smv::model::{GuardedCmd, Model};
use procheck_smv::trace::Counterexample;
use procheck_smv::{BackendVerdict, CheckBackend};
use procheck_symbolic::BmcBackend;
use proptest::prelude::*;

const DOMAIN: [&str; 3] = ["v0", "v1", "v2"];
const LIMIT: usize = 100_000;
const BOUND: usize = 12;

/// Random guarded-command models with unique labels, mirroring the
/// generator in `reduction_prop.rs` (2–5 three-valued variables, up to
/// 13 commands), optionally with a fairness constraint so the response
/// lasso search exercises its fairness clauses.
fn arb_model() -> impl Strategy<Value = Model> {
    let n_vars = 2usize..5;
    let cmds = proptest::collection::vec(
        (
            0usize..5, // guard var
            0usize..3, // guard value
            0usize..5, // update var
            0usize..3, // update value
        ),
        1..14,
    );
    let fair = proptest::option::of(0usize..3);
    (n_vars, cmds, fair).prop_map(|(vars, cmds, fair)| {
        let mut model = Model::new("random");
        for i in 0..vars {
            model.declare_var(&format!("x{i}"), &DOMAIN, &[DOMAIN[0]]);
        }
        for (i, (gv, gx, uv, ux)) in cmds.into_iter().enumerate() {
            let gv = gv % vars;
            let uv = uv % vars;
            model.add_command(
                GuardedCmd::new(format!("c{i}"), Expr::var_eq(format!("x{gv}"), DOMAIN[gx]))
                    .set(format!("x{uv}"), DOMAIN[ux]),
            );
        }
        if let Some(fx) = fair {
            model.add_fairness(Expr::var_ne("x0", DOMAIN[fx]));
        }
        model
    })
}

/// All four property classes over `x0`/`x1`.
fn property_of(kind: usize) -> Property {
    match kind {
        0 => Property::invariant("p", Expr::var_ne("x0", DOMAIN[2])),
        1 => Property::reachable("p", Expr::var_eq("x0", DOMAIN[1])),
        2 => Property::precedence(
            "p",
            Expr::var_eq("x0", DOMAIN[2]),
            Expr::var_eq("x1", DOMAIN[1]),
        ),
        _ => Property::response(
            "p",
            Expr::var_eq("x0", DOMAIN[1]),
            Expr::var_eq("x0", DOMAIN[0]),
        ),
    }
}

/// Evaluates a source expression against a rendered trace state.
fn eval(e: &Expr, state: &BTreeMap<String, String>) -> bool {
    match e {
        Expr::True => true,
        Expr::False => false,
        Expr::Eq(v, x) => state[v.as_str()] == x.as_str(),
        Expr::Ne(v, x) => state[v.as_str()] != x.as_str(),
        Expr::In(v, xs) => xs.iter().any(|x| state[v.as_str()] == x.as_str()),
        Expr::And(es) => es.iter().all(|e| eval(e, state)),
        Expr::Or(es) => es.iter().any(|e| eval(e, state)),
        Expr::Not(e) => !eval(e, state),
        Expr::Implies(a, b) => !eval(a, state) || eval(b, state),
    }
}

/// Step-by-step replay of a rendered counterexample against the source
/// model (same discipline as `reduction_prop.rs`): initial assignment,
/// guard truth, exact updates, stutter-in-place.
fn assert_valid_in_source(model: &Model, ce: &Counterexample) -> Result<(), TestCaseError> {
    let first = &ce.steps[0];
    prop_assert_eq!(first.label.as_str(), "init");
    for var in model.vars() {
        prop_assert_eq!(
            first.state[var.name.as_str()].as_str(),
            DOMAIN[0],
            "bmc trace must start in the initial assignment"
        );
    }
    for w in ce.steps.windows(2) {
        let (prev, next) = (&w[0], &w[1]);
        if next.label == "stutter" {
            prop_assert_eq!(
                &prev.state,
                &next.state,
                "stutter steps leave state unchanged"
            );
            continue;
        }
        let cmd = model
            .commands()
            .iter()
            .find(|c| c.label.as_str() == next.label)
            .expect("bmc labels name real commands");
        prop_assert!(
            eval(&cmd.guard, &prev.state),
            "guard of {} must hold in the preceding state",
            next.label
        );
        for var in model.vars() {
            let expect = cmd
                .updates
                .get(&var.name)
                .map(|v| v.as_str())
                .unwrap_or_else(|| prev.state[var.name.as_str()].as_str());
            prop_assert_eq!(
                next.state[var.name.as_str()].as_str(),
                expect,
                "step {} must apply exactly the command's updates",
                next.label
            );
        }
    }
    if let Some(l) = ce.lasso_start {
        prop_assert!(l < ce.steps.len());
        prop_assert_eq!(
            &ce.steps[l].state,
            &ce.steps[ce.steps.len() - 1].state,
            "lasso must close on its start state"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The two engines agree on every random model, property class, and
    /// exclusion mask, under the Both-mode agreement rules.
    #[test]
    fn backends_agree_on_random_models(
        model in arb_model(),
        kind in 0usize..4,
        excl in proptest::collection::vec(0usize..14, 0..3),
    ) {
        let compiled = CompiledModel::new(&model).expect("generated models are valid");
        let prop = property_of(kind);
        let cp = compiled.compile_property(&prop).expect("vars always exist");
        let mut stats = CheckStats::default();
        let graph = build_reach_graph_budgeted(
            &compiled,
            LIMIT,
            &BudgetMeter::unlimited(),
            &mut stats,
            1,
        )
        .expect("random 3^4 models are far below the limit");
        let n_cmds = model.commands().len();
        let mut excluded = compiled.exclusion_set();
        for i in &excl {
            let sym = Sym::intern(&format!("c{}", i % n_cmds));
            for id in compiled.commands_labeled(sym) {
                excluded.insert(id);
            }
        }

        let mut qs = QueryStats::default();
        let explicit = check_on_graph(&compiled, &graph, &cp, &excluded, LIMIT, &mut qs)
            .expect("within limit");

        let bmc = BmcBackend::new(BOUND);
        let mut qs = QueryStats::default();
        let symbolic = bmc
            .answer(&compiled, &cp, &excluded, LIMIT, &BudgetMeter::unlimited(), &mut qs)
            .expect("bmc on toy models never exhausts a budget or diverges");

        match (&explicit, &symbolic) {
            // Explicit pass: the bounded engine must come up empty.
            (Verdict::Holds, BackendVerdict::BoundReached(_))
            | (Verdict::Unreachable, BackendVerdict::BoundReached(_)) => {}
            (Verdict::Holds, BackendVerdict::Definite(v))
            | (Verdict::Unreachable, BackendVerdict::Definite(v)) => {
                prop_assert!(
                    false,
                    "bmc refutes a property the explicit engine proved: {v:?}"
                );
            }
            // Explicit violation/witness: BMC may miss it only when it
            // genuinely needs more transitions than the bound.
            (Verdict::Violated(ce), BackendVerdict::BoundReached(k))
            | (Verdict::Reachable(ce), BackendVerdict::BoundReached(k)) => {
                prop_assert!(
                    ce.steps.len() - 1 > *k,
                    "explicit found a {}-transition trace but bmc gave up at bound {}",
                    ce.steps.len() - 1,
                    k
                );
            }
            (Verdict::Violated(_), BackendVerdict::Definite(Verdict::Violated(bce))) => {
                assert_valid_in_source(&model, bce)?;
                if matches!(prop, Property::Response { .. }) {
                    prop_assert!(bce.lasso_start.is_some(), "response violations are lassos");
                }
            }
            (Verdict::Reachable(_), BackendVerdict::Definite(Verdict::Reachable(bce))) => {
                assert_valid_in_source(&model, bce)?;
            }
            (e, s) => {
                prop_assert!(false, "verdict class diverges: explicit={e:?} bmc={s:?}");
            }
        }
    }
}
