//! Property-based tests for the explicit-state checker: internal
//! consistency laws and counterexample validity on random models.

use procheck_smv::checker::{check_bounded, Property, Verdict};
use procheck_smv::expr::Expr;
use procheck_smv::model::{GuardedCmd, Model};
use proptest::prelude::*;
use std::collections::BTreeMap;

const DOMAIN: [&str; 3] = ["v0", "v1", "v2"];

#[derive(Debug, Clone)]
struct RandomModel {
    model: Model,
    atom: Expr,
}

fn arb_model() -> impl Strategy<Value = RandomModel> {
    let n_vars = 2usize..4;
    let cmds = proptest::collection::vec(
        (
            0usize..3, // guard var
            0usize..3, // guard value
            0usize..3, // update var
            0usize..3, // update value
        ),
        1..10,
    );
    (n_vars, cmds, 0usize..3, 0usize..3).prop_map(|(vars, cmds, pv, pi)| {
        let mut model = Model::new("random");
        for i in 0..vars {
            model.declare_var(&format!("x{i}"), &DOMAIN, &[DOMAIN[0]]);
        }
        for (i, (gv, gx, uv, ux)) in cmds.into_iter().enumerate() {
            let gv = gv % vars;
            let uv = uv % vars;
            model.add_command(
                GuardedCmd::new(format!("c{i}"), Expr::var_eq(format!("x{gv}"), DOMAIN[gx]))
                    .set(format!("x{uv}"), DOMAIN[ux]),
            );
        }
        let atom = Expr::var_eq(format!("x{}", pv % vars), DOMAIN[pi]);
        RandomModel { model, atom }
    })
}

/// Evaluates an atomic equality expression against a trace state.
fn holds_in(expr: &Expr, state: &BTreeMap<String, String>) -> bool {
    match expr {
        Expr::Eq(v, x) => state
            .get(v.as_str())
            .map(|s| s == x.as_str())
            .unwrap_or(false),
        Expr::Not(inner) => !holds_in(inner, state),
        _ => panic!("test oracle only evaluates atoms"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Duality: `AG p` holds iff `EF ¬p` is unreachable.
    #[test]
    fn invariant_reachability_duality(rm in arb_model()) {
        let inv = check_bounded(
            &rm.model,
            &Property::invariant("p", rm.atom.clone()),
            100_000,
        ).unwrap();
        let reach = check_bounded(
            &rm.model,
            &Property::reachable("notp", Expr::not(rm.atom.clone())),
            100_000,
        ).unwrap();
        match (inv, reach) {
            (Verdict::Holds, Verdict::Unreachable) => {}
            (Verdict::Violated(_), Verdict::Reachable(_)) => {}
            (a, b) => prop_assert!(false, "duality broken: {a:?} vs {b:?}"),
        }
    }

    /// A reachability witness really ends in a goal state, and every step
    /// follows a declared command (or a stutter).
    #[test]
    fn witnesses_are_valid_executions(rm in arb_model()) {
        let verdict = check_bounded(
            &rm.model,
            &Property::reachable("goal", rm.atom.clone()),
            100_000,
        ).unwrap();
        let Verdict::Reachable(ce) = verdict else { return Ok(()) };
        let last = ce.steps.last().expect("non-empty trace");
        prop_assert!(holds_in(&rm.atom, &last.state), "final state misses the goal");
        for pair in ce.steps.windows(2) {
            let (prev, next) = (&pair[0], &pair[1]);
            if next.label == "stutter" {
                prop_assert_eq!(&prev.state, &next.state);
                continue;
            }
            let cmd = rm.model.commands().iter()
                .find(|c| c.label.as_str() == next.label)
                .expect("labelled command exists");
            for (var, value) in &cmd.updates {
                prop_assert_eq!(&next.state[var.as_str()], value.as_str(), "update not applied");
            }
            for (var, value) in &prev.state {
                if !cmd.updates.contains_key(&procheck_ident::Sym::intern(var)) {
                    prop_assert_eq!(&next.state[var], value, "frame violated");
                }
            }
        }
    }

    /// `G (p → F p)` is a tautology: discharged in the trigger state.
    #[test]
    fn response_self_discharge(rm in arb_model()) {
        let verdict = check_bounded(
            &rm.model,
            &Property::response("taut", rm.atom.clone(), rm.atom.clone()),
            100_000,
        ).unwrap();
        prop_assert_eq!(verdict, Verdict::Holds);
    }

    /// Precedence with an unsatisfiable event is a tautology.
    #[test]
    fn precedence_false_event(rm in arb_model()) {
        let verdict = check_bounded(
            &rm.model,
            &Property::precedence("taut", Expr::False, rm.atom.clone()),
            100_000,
        ).unwrap();
        prop_assert_eq!(verdict, Verdict::Holds);
    }

    /// Checking is deterministic: two runs agree exactly.
    #[test]
    fn checking_is_deterministic(rm in arb_model()) {
        let p = Property::invariant("p", rm.atom.clone());
        let a = check_bounded(&rm.model, &p, 100_000).unwrap();
        let b = check_bounded(&rm.model, &p, 100_000).unwrap();
        prop_assert_eq!(a, b);
    }
}
