//! Checker coverage for the richer guard shapes (`In`, `Or`, `Implies`,
//! nested `Not`) and disjunctive initial states — the expression forms
//! the threat builder and property authors may emit.

use procheck_smv::checker::{check, check_bounded, CheckError, Property, Verdict};
use procheck_smv::model::Model as SmvModel;

/// `check` with the error path unwrapped — every model here is valid.
fn chk(m: &SmvModel, p: &Property) -> Verdict {
    check(m, p).expect("test model valid")
}

/// The retired panicking convenience path now surfaces validation
/// problems as typed errors.
#[test]
fn check_returns_typed_error_for_invalid_model() {
    let mut m = SmvModel::new("bad");
    m.declare_var("x", &["0"], &["0"]);
    let err = check(&m, &Property::reachable("oops", Expr::var_eq("y", "1")))
        .expect_err("undeclared variable");
    assert!(matches!(err, CheckError::InvalidModel(_)));
}
use procheck_smv::expr::Expr;
use procheck_smv::model::{GuardedCmd, Model};

fn counter() -> Model {
    let mut m = Model::new("counter");
    m.declare_var("x", &["0", "1", "2", "3"], &["0", "1"]);
    for (a, b) in [("0", "1"), ("1", "2"), ("2", "3")] {
        m.add_command(GuardedCmd::new(format!("inc{a}"), Expr::var_eq("x", a)).set("x", b));
    }
    m
}

#[test]
fn in_guard_and_in_property() {
    let mut m = counter();
    // A reset that fires only from the upper half of the domain.
    m.add_command(GuardedCmd::new("reset", Expr::var_in("x", ["2", "3"])).set("x", "0"));
    let v = chk(
        &m,
        &Property::invariant("bounded", Expr::var_in("x", ["0", "1", "2", "3"])),
    );
    assert_eq!(v, Verdict::Holds);
    let v2 = chk(
        &m,
        &Property::reachable("resettable", Expr::var_eq("x", "0")),
    );
    assert!(matches!(v2, Verdict::Reachable(_)));
}

#[test]
fn or_and_implies_properties() {
    let m = counter();
    let v = chk(
        &m,
        &Property::invariant(
            "or_form",
            Expr::or([Expr::var_ne("x", "3"), Expr::var_eq("x", "3")]),
        ),
    );
    assert_eq!(v, Verdict::Holds);
    let v2 = chk(
        &m,
        &Property::invariant(
            "implies_form",
            Expr::implies(Expr::var_eq("x", "3"), Expr::var_in("x", ["3"])),
        ),
    );
    assert_eq!(v2, Verdict::Holds);
    // Out-of-domain value in a property is a validation error, not a
    // silent false.
    let err = check_bounded(
        &m,
        &Property::invariant("bad", Expr::var_eq("x", "9999")),
        10_000,
    );
    assert!(err.is_err());
}

#[test]
fn nested_not_evaluates() {
    let m = counter();
    let v = chk(
        &m,
        &Property::invariant(
            "double_neg",
            Expr::not(Expr::not(Expr::var_in("x", ["0", "1", "2", "3"]))),
        ),
    );
    assert_eq!(v, Verdict::Holds);
}

#[test]
fn disjunctive_initial_states_all_explored() {
    let m = counter();
    // From init {0,1}: both 0-origin and 1-origin paths exist; a witness
    // for x=1 must be length zero (initial state), not via inc0.
    let Verdict::Reachable(ce) = chk(&m, &Property::reachable("one", Expr::var_eq("x", "1")))
    else {
        panic!("x=1 reachable");
    };
    assert_eq!(ce.steps.len(), 1, "x=1 is an initial state: {ce}");
    assert_eq!(ce.steps[0].label, "init");
}

#[test]
fn implies_in_guard() {
    let mut m = Model::new("g");
    m.declare_var("a", &["0", "1"], &["0"]);
    m.declare_var("b", &["0", "1"], &["0"]);
    // Fires when (a=1 → b=1); initially a=0 so the implication is true.
    m.add_command(
        GuardedCmd::new(
            "step",
            Expr::implies(Expr::var_eq("a", "1"), Expr::var_eq("b", "1")),
        )
        .set("a", "1"),
    );
    let v = chk(&m, &Property::reachable("a1", Expr::var_eq("a", "1")));
    assert!(matches!(v, Verdict::Reachable(_)));
    // After a=1 (b still 0) the guard is false: a cannot change further,
    // and b=1 is unreachable.
    let v2 = chk(&m, &Property::reachable("b1", Expr::var_eq("b", "1")));
    assert_eq!(v2, Verdict::Unreachable);
}
