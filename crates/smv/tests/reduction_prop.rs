//! Property-based equivalence of the state-space reductions: for random
//! small models,
//!
//! * the partial-order reduction must leave the built [`ReachGraph`]
//!   *identical* — node id by node id — to the unreduced build (it only
//!   skips redundant guard evaluations, never changes what is explored);
//! * cone-of-influence slicing must preserve every query answer: the
//!   sliced graph yields the same verdict class as the full graph, with
//!   the re-expanded counterexample exactly as long as the full model's
//!   (shortest paths survive projection) and semantically valid step by
//!   step against the *source* model — including under CEGAR-style
//!   label-exclusion masks.
//!
//! Mirrors `parallel_explore_prop.rs`, which pins the same contract for
//! the parallel frontier.

use std::collections::BTreeMap;

use procheck_ident::Sym;
use procheck_smv::checker::{
    build_reach_graph_budgeted, build_reach_graph_budgeted_opts, check_on_graph, CheckStats,
    CompiledModel, Property, QueryStats,
};
use procheck_smv::coi::{expand_counterexample, slice_for_property};
use procheck_smv::expr::Expr;
use procheck_smv::model::{GuardedCmd, Model};
use procheck_smv::trace::Counterexample;
use procheck_smv::{BudgetMeter, ReachGraph};
use proptest::prelude::*;

const DOMAIN: [&str; 3] = ["v0", "v1", "v2"];
const LIMIT: usize = 100_000;

/// Random guarded-command models with unique labels. The checked
/// property observes `x0` only, while guards and updates scatter across
/// all variables — commands updating only `x1..` are exactly what the
/// cone of influence drops, so a healthy share of generated models have
/// a proper slice.
fn arb_model() -> impl Strategy<Value = Model> {
    let n_vars = 2usize..5;
    let cmds = proptest::collection::vec(
        (
            0usize..5, // guard var
            0usize..3, // guard value
            0usize..5, // update var
            0usize..3, // update value
        ),
        1..14,
    );
    (n_vars, cmds).prop_map(|(vars, cmds)| {
        let mut model = Model::new("random");
        for i in 0..vars {
            model.declare_var(&format!("x{i}"), &DOMAIN, &[DOMAIN[0]]);
        }
        for (i, (gv, gx, uv, ux)) in cmds.into_iter().enumerate() {
            let gv = gv % vars;
            let uv = uv % vars;
            model.add_command(
                GuardedCmd::new(format!("c{i}"), Expr::var_eq(format!("x{gv}"), DOMAIN[gx]))
                    .set(format!("x{uv}"), DOMAIN[ux]),
            );
        }
        model
    })
}

/// The three sliceable property classes, all observing only `x0`.
/// (Response properties are never sliced — pinned separately below.)
fn property_of(kind: usize) -> Property {
    match kind {
        0 => Property::invariant("p", Expr::var_ne("x0", DOMAIN[2])),
        1 => Property::reachable("p", Expr::var_eq("x0", DOMAIN[1])),
        _ => Property::precedence(
            "p",
            Expr::var_eq("x0", DOMAIN[2]),
            Expr::var_eq("x0", DOMAIN[1]),
        ),
    }
}

/// Evaluates a source expression against a rendered trace state.
fn eval(e: &Expr, state: &BTreeMap<String, String>) -> bool {
    match e {
        Expr::True => true,
        Expr::False => false,
        Expr::Eq(v, x) => state[v.as_str()] == x.as_str(),
        Expr::Ne(v, x) => state[v.as_str()] != x.as_str(),
        Expr::In(v, xs) => xs.iter().any(|x| state[v.as_str()] == x.as_str()),
        Expr::And(es) => es.iter().all(|e| eval(e, state)),
        Expr::Or(es) => es.iter().any(|e| eval(e, state)),
        Expr::Not(e) => !eval(e, state),
        Expr::Implies(a, b) => !eval(a, state) || eval(b, state),
    }
}

/// Checks that an expanded counterexample is a genuine behaviour of the
/// *source* model: starts in the (singleton) initial assignment, and
/// every step either stutters in place or fires a command whose guard
/// held in the previous state and whose updates produce exactly the
/// next state.
fn assert_valid_in_source(model: &Model, ce: &Counterexample) -> Result<(), TestCaseError> {
    let first = &ce.steps[0];
    prop_assert_eq!(first.label.as_str(), "init");
    for var in model.vars() {
        prop_assert_eq!(
            first.state[var.name.as_str()].as_str(),
            DOMAIN[0],
            "expanded trace must start in the initial assignment"
        );
    }
    for w in ce.steps.windows(2) {
        let (prev, next) = (&w[0], &w[1]);
        if next.label == "stutter" {
            prop_assert_eq!(
                &prev.state,
                &next.state,
                "stutter steps leave state unchanged"
            );
            continue;
        }
        let cmd = model
            .commands()
            .iter()
            .find(|c| c.label.as_str() == next.label)
            .expect("expanded labels name real commands");
        prop_assert!(
            eval(&cmd.guard, &prev.state),
            "guard of {} must hold in the preceding state",
            next.label
        );
        for var in model.vars() {
            let expect = cmd
                .updates
                .get(&var.name)
                .map(|v| v.as_str())
                .unwrap_or_else(|| prev.state[var.name.as_str()].as_str());
            prop_assert_eq!(
                next.state[var.name.as_str()].as_str(),
                expect,
                "step {} must apply exactly the command's updates",
                next.label
            );
        }
    }
    Ok(())
}

fn build_graph(model: &CompiledModel, por: bool) -> ReachGraph {
    let mut stats = CheckStats::default();
    build_reach_graph_budgeted_opts(model, LIMIT, &BudgetMeter::unlimited(), &mut stats, 1, por)
        .expect("random 3^4 models are far below the limit")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// POR changes nothing observable about the graph: same arena, CSR
    /// edges, parents, predecessors, levels, and build stats as the
    /// unreduced build, at every worker width.
    #[test]
    fn por_graph_equals_unreduced_graph(model in arb_model()) {
        let compiled = CompiledModel::new(&model).expect("generated models are valid");
        let base = build_graph(&compiled, false);
        // POR forced on at width 1, then the env-default build (which is
        // POR-on unless PROCHECK_NO_POR is set) at wider frontiers.
        let por_on = build_graph(&compiled, true);
        let mut stats = CheckStats::default();
        let por_wide = build_reach_graph_budgeted(
            &compiled,
            LIMIT,
            &BudgetMeter::unlimited(),
            &mut stats,
            4,
        )
        .expect("within limit");
        for (g, tag) in [(&por_on, "forced-w1"), (&por_wide, "default-w4")] {
            prop_assert_eq!(base.node_count(), g.node_count(), "{}", tag);
            prop_assert_eq!(base.edge_count(), g.edge_count(), "{}", tag);
            prop_assert_eq!(base.levels(), g.levels(), "{}", tag);
            prop_assert_eq!(base.build_stats(), g.build_stats(), "{}", tag);
            for id in 0..base.node_count() as u32 {
                prop_assert_eq!(base.state_of(id), g.state_of(id), "node {} {}", id, tag);
                prop_assert_eq!(base.parent_edge(id), g.parent_edge(id), "node {} {}", id, tag);
                let b: Vec<(u32, u32)> = base.successors(id).collect();
                let p: Vec<(u32, u32)> = g.successors(id).collect();
                prop_assert_eq!(b, p, "successors at node {} {}", id, tag);
                prop_assert_eq!(base.predecessors(id), g.predecessors(id), "node {} {}", id, tag);
            }
        }
    }

    /// Slicing preserves every query answer: verdict class, trace
    /// length, and (after re-expansion) a step-by-step valid behaviour
    /// of the source model — with and without CEGAR-style exclusion
    /// masks.
    #[test]
    fn sliced_query_equals_full_query(
        model in arb_model(),
        kind in 0usize..3,
        excl in proptest::collection::vec(0usize..14, 0..3),
    ) {
        let compiled = CompiledModel::new(&model).expect("generated models are valid");
        let prop = property_of(kind);
        let cp = compiled.compile_property(&prop).expect("x0 always exists");
        let Some(sliced) = slice_for_property(&compiled, &cp) else {
            // Saturated cone: nothing to compare, the pipeline uses the
            // full graph.
            return Ok(());
        };
        let scp = sliced
            .model
            .compile_property(&prop)
            .expect("in-cone property recompiles against the slice");
        let full_graph = build_graph(&compiled, false);
        let sliced_graph = build_graph(&sliced.model, true);
        prop_assert!(
            sliced_graph.node_count() <= full_graph.node_count(),
            "projection may never enlarge the reachable space"
        );
        let n_cmds = model.commands().len();
        let excluded_labels: Vec<String> =
            excl.iter().map(|i| format!("c{}", i % n_cmds)).collect();
        for labels in [&[][..], &excluded_labels[..]] {
            let mut fex = compiled.exclusion_set();
            let mut sex = sliced.model.exclusion_set();
            for l in labels {
                let sym = Sym::intern(l);
                for id in compiled.commands_labeled(sym) {
                    fex.insert(id);
                }
                for id in sliced.model.commands_labeled(sym) {
                    sex.insert(id);
                }
            }
            let mut qs = QueryStats::default();
            let full_v = check_on_graph(&compiled, &full_graph, &cp, &fex, LIMIT, &mut qs)
                .expect("within limit");
            let mut qs = QueryStats::default();
            let sliced_v = check_on_graph(&sliced.model, &sliced_graph, &scp, &sex, LIMIT, &mut qs)
                .expect("within limit");
            prop_assert_eq!(
                std::mem::discriminant(&full_v),
                std::mem::discriminant(&sliced_v),
                "verdict class diverges under exclusions {:?}: full={:?} sliced={:?}",
                labels,
                &full_v,
                &sliced_v
            );
            if let (Some(fce), Some(sce)) = (full_v.trace(), sliced_v.trace()) {
                let expanded = expand_counterexample(&compiled, sce);
                prop_assert_eq!(
                    fce.steps.len(),
                    expanded.steps.len(),
                    "shortest counterexamples survive projection ({:?})",
                    labels
                );
                prop_assert_eq!(fce.lasso_start, expanded.lasso_start);
                assert_valid_in_source(&model, &expanded)?;
            }
        }
    }

    /// Response properties are never sliced: their fairness/lasso
    /// machinery needs the full model.
    #[test]
    fn response_properties_never_slice(model in arb_model()) {
        let compiled = CompiledModel::new(&model).expect("generated models are valid");
        let prop = Property::response(
            "p",
            Expr::var_eq("x0", DOMAIN[1]),
            Expr::var_eq("x0", DOMAIN[0]),
        );
        let cp = compiled.compile_property(&prop).expect("x0 always exists");
        prop_assert!(slice_for_property(&compiled, &cp).is_none());
    }
}
