//! Property-based equivalence of parallel and serial exploration: for
//! random small models, the level-synchronized multi-worker frontier
//! must produce the *same* [`ReachGraph`] as the serial implicit-queue
//! BFS — same state arena (node ids and their states), same CSR
//! successor layout, same BFS parents, same predecessor lists, same
//! build stats. Not "isomorphic": identical, node id by node id.

use procheck_smv::checker::{build_reach_graph_budgeted, CheckStats, CompiledModel};
use procheck_smv::expr::Expr;
use procheck_smv::model::{GuardedCmd, Model};
use procheck_smv::{BudgetMeter, ReachGraph};
use proptest::prelude::*;

const DOMAIN: [&str; 3] = ["v0", "v1", "v2"];

fn arb_model() -> impl Strategy<Value = Model> {
    let n_vars = 2usize..5;
    let cmds = proptest::collection::vec(
        (
            0usize..5, // guard var
            0usize..3, // guard value
            0usize..5, // update var
            0usize..3, // update value
        ),
        1..12,
    );
    (n_vars, cmds).prop_map(|(vars, cmds)| {
        let mut model = Model::new("random");
        for i in 0..vars {
            model.declare_var(&format!("x{i}"), &DOMAIN, &[DOMAIN[0]]);
        }
        for (i, (gv, gx, uv, ux)) in cmds.into_iter().enumerate() {
            let gv = gv % vars;
            let uv = uv % vars;
            model.add_command(
                GuardedCmd::new(format!("c{i}"), Expr::var_eq(format!("x{gv}"), DOMAIN[gx]))
                    .set(format!("x{uv}"), DOMAIN[ux]),
            );
        }
        model
    })
}

fn build(model: &Model, explore_threads: usize) -> (ReachGraph, CheckStats) {
    let c = CompiledModel::new(model).expect("generated models are valid");
    let mut stats = CheckStats::default();
    let g = build_reach_graph_budgeted(
        &c,
        100_000,
        &BudgetMeter::unlimited(),
        &mut stats,
        explore_threads,
    )
    .expect("random 3^4 models are far below the limit");
    (g, stats)
}

/// Asserts graph identity down to node ids — arena contents, CSR edges,
/// parents, predecessors, and exploration stats.
fn assert_identical(serial: &ReachGraph, parallel: &ReachGraph, width: usize) {
    assert_eq!(serial.node_count(), parallel.node_count(), "width={width}");
    assert_eq!(serial.edge_count(), parallel.edge_count(), "width={width}");
    assert_eq!(serial.init_count(), parallel.init_count(), "width={width}");
    assert_eq!(serial.is_packed(), parallel.is_packed(), "width={width}");
    assert_eq!(serial.levels(), parallel.levels(), "width={width}");
    assert_eq!(serial.peak_level(), parallel.peak_level(), "width={width}");
    assert_eq!(
        serial.build_stats(),
        parallel.build_stats(),
        "width={width}"
    );
    for id in 0..serial.node_count() as u32 {
        assert_eq!(
            serial.state_of(id),
            parallel.state_of(id),
            "arena diverges at node {id}, width={width}"
        );
        assert_eq!(
            serial.parent_edge(id),
            parallel.parent_edge(id),
            "BFS parent diverges at node {id}, width={width}"
        );
        let s: Vec<(u32, u32)> = serial.successors(id).collect();
        let p: Vec<(u32, u32)> = parallel.successors(id).collect();
        assert_eq!(s, p, "CSR successors diverge at node {id}, width={width}");
        assert_eq!(
            serial.predecessors(id),
            parallel.predecessors(id),
            "predecessors diverge at node {id}, width={width}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole contract on random models: every worker count yields
    /// the serial graph, bit for bit.
    #[test]
    fn parallel_graph_equals_serial_graph(model in arb_model()) {
        let (serial, serial_stats) = build(&model, 1);
        for width in [2usize, 3, 4, 8] {
            let (parallel, parallel_stats) = build(&model, width);
            prop_assert_eq!(&serial_stats, &parallel_stats, "stats diverge at width {}", width);
            assert_identical(&serial, &parallel, width);
        }
    }
}
