//! Cooperative resource budgets for exploration and queries.
//!
//! A [`Budget`] caps what one *analysis run* may spend: wall-clock time,
//! states per property, and total states across every graph build and
//! product query in the run. The engine never polls a clock or an atomic
//! on the per-state hot path; instead the BFS loops call
//! [`BudgetMeter::charge_and_probe`] once every [`PROBE_STRIDE`] pops
//! (and [`BudgetMeter::is_limited`] short-circuits the whole thing to a
//! single branch when no budget is set, which is how the unlimited
//! default stays off the benchmark floor).
//!
//! Exhaustion is *not* an abort: it surfaces as
//! [`CheckError::Budget`](crate::checker::CheckError::Budget) carrying a
//! [`BudgetExceeded`] reason, with partial
//! [`CheckStats`](crate::checker::CheckStats) absorbed exactly like the
//! state-limit path, so the pipeline can report a degraded per-property
//! outcome and keep going.
//!
//! Determinism: the total-state and per-property caps are count-based
//! and probed at fixed pop counts, so at one worker thread the same
//! budget trips at the same state every run (the CI deadline test relies
//! on this — see `crates/core/tests/budget_degradation.rs`). The
//! wall-clock deadline is inherently racy and is meant for operational
//! ceilings, not reproducible tests.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How many BFS pops between budget probes. A power of two so the loop
/// test compiles to a mask; small enough that a deadline overshoots by
/// at most a few thousand cheap state expansions.
pub const PROBE_STRIDE: usize = 1024;

/// Resource limits for one analysis run. The default is unlimited in
/// every dimension, which costs one predictable branch per
/// [`PROBE_STRIDE`] pops and nothing else.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock ceiling for the whole run.
    pub deadline: Option<Duration>,
    /// Cap on states a single property's exploration may intern (applied
    /// by callers as `min(state_limit, property_states)`).
    pub property_states: Option<usize>,
    /// Cap on states interned across *all* graph builds and product
    /// queries in the run, shared by every worker thread.
    pub total_states: Option<u64>,
}

impl Budget {
    /// No limits in any dimension.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// True when no dimension is capped.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.property_states.is_none() && self.total_states.is_none()
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Sets the per-property state cap.
    pub fn with_property_states(mut self, n: usize) -> Self {
        self.property_states = Some(n);
        self
    }

    /// Sets the run-wide total-state cap.
    pub fn with_total_states(mut self, n: u64) -> Self {
        self.total_states = Some(n);
        self
    }

    /// The effective per-property state limit given the caller's default.
    pub fn property_limit(&self, default: usize) -> usize {
        match self.property_states {
            Some(cap) => cap.min(default),
            None => default,
        }
    }

    /// Starts the clock: converts the declarative budget into a live
    /// meter. One meter serves a whole run; workers share it by
    /// reference.
    pub fn start(&self) -> BudgetMeter {
        BudgetMeter {
            deadline: self.deadline.map(|d| (Instant::now() + d, d)),
            total_cap: self.total_states,
            total: AtomicU64::new(0),
        }
    }
}

/// Why a budget probe failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BudgetExceeded {
    /// The run's wall-clock deadline passed.
    Deadline {
        /// The configured ceiling.
        limit: Duration,
    },
    /// The run-wide total-state cap was reached.
    TotalStates {
        /// The configured cap.
        limit: u64,
    },
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetExceeded::Deadline { limit } => {
                write!(f, "wall-clock deadline of {limit:?} exceeded")
            }
            BudgetExceeded::TotalStates { limit } => {
                write!(f, "run-wide budget of {limit} total states exhausted")
            }
        }
    }
}

/// A started [`Budget`]: the deadline resolved to an instant and the
/// shared total-state counter. All methods take `&self`, so one meter is
/// shared across worker threads for the duration of a run.
#[derive(Debug)]
pub struct BudgetMeter {
    deadline: Option<(Instant, Duration)>,
    total_cap: Option<u64>,
    total: AtomicU64,
}

impl BudgetMeter {
    /// A meter that never trips — the delegation target for every legacy
    /// entry point, so un-budgeted callers see byte-identical behaviour.
    pub fn unlimited() -> Self {
        Budget::unlimited().start()
    }

    /// True when any dimension is capped. The BFS loops test this once
    /// per probe window and skip all accounting when it is false.
    #[inline]
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.total_cap.is_some()
    }

    /// States charged against the total cap so far (across all threads).
    pub fn total_charged(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Charges `n` freshly interned states and checks every capped
    /// dimension. Count-based caps are checked before the clock so that
    /// count-limited runs fail deterministically.
    ///
    /// # Errors
    ///
    /// Returns the first exceeded dimension as a [`BudgetExceeded`].
    pub fn charge_and_probe(&self, n: u64) -> Result<(), BudgetExceeded> {
        let total = self.total.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(cap) = self.total_cap {
            if total > cap {
                return Err(BudgetExceeded::TotalStates { limit: cap });
            }
        }
        if let Some((at, limit)) = self.deadline {
            if Instant::now() >= at {
                return Err(BudgetExceeded::Deadline { limit });
            }
        }
        Ok(())
    }
}

/// Renders a panic payload (as caught by `std::panic::catch_unwind`)
/// into the human-readable message used by
/// [`CheckError::Panic`](crate::checker::CheckError::Panic) and degraded
/// property outcomes. `&str` and `String` payloads (everything `panic!`
/// produces) come through verbatim; anything else gets a placeholder.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_meter_never_trips() {
        let m = BudgetMeter::unlimited();
        assert!(!m.is_limited());
        for _ in 0..64 {
            m.charge_and_probe(u64::MAX / 128).expect("unlimited");
        }
    }

    #[test]
    fn total_state_cap_trips_deterministically() {
        let m = Budget::unlimited().with_total_states(100).start();
        assert!(m.is_limited());
        m.charge_and_probe(60).expect("under cap");
        m.charge_and_probe(40).expect("exactly at cap");
        let err = m.charge_and_probe(1).expect_err("over cap");
        assert_eq!(err, BudgetExceeded::TotalStates { limit: 100 });
        assert_eq!(m.total_charged(), 101);
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let m = Budget::unlimited().with_deadline(Duration::ZERO).start();
        let err = m.charge_and_probe(0).expect_err("deadline passed");
        assert!(matches!(err, BudgetExceeded::Deadline { .. }));
    }

    #[test]
    fn count_caps_probe_before_the_clock() {
        // Both dimensions exceeded: the count cap must win, so tests
        // that combine a deadline with a tiny count cap stay
        // deterministic.
        let m = Budget::unlimited()
            .with_total_states(10)
            .with_deadline(Duration::ZERO)
            .start();
        let err = m.charge_and_probe(11).expect_err("both exceeded");
        assert_eq!(err, BudgetExceeded::TotalStates { limit: 10 });
    }

    #[test]
    fn property_limit_is_min_of_cap_and_default() {
        let b = Budget::unlimited().with_property_states(500);
        assert_eq!(b.property_limit(1000), 500);
        assert_eq!(b.property_limit(100), 100);
        assert_eq!(Budget::unlimited().property_limit(1000), 1000);
    }

    #[test]
    fn budget_builder_round_trip() {
        let b = Budget::unlimited()
            .with_deadline(Duration::from_secs(5))
            .with_property_states(1_000)
            .with_total_states(1_000_000);
        assert!(!b.is_unlimited());
        assert_eq!(b.deadline, Some(Duration::from_secs(5)));
        assert_eq!(b.property_states, Some(1_000));
        assert_eq!(b.total_states, Some(1_000_000));
        assert!(Budget::default().is_unlimited());
    }

    #[test]
    fn panic_message_extracts_common_payloads() {
        let p = std::panic::catch_unwind(|| panic!("boom")).unwrap_err();
        assert_eq!(panic_message(p), "boom");
        let p = std::panic::catch_unwind(|| panic!("with {}", 42)).unwrap_err();
        assert_eq!(panic_message(p), "with 42");
        let p = std::panic::catch_unwind(|| std::panic::panic_any(7u32)).unwrap_err();
        assert_eq!(panic_message(p), "non-string panic payload");
    }
}
