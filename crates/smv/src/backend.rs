//! The pluggable checking-backend seam.
//!
//! The CEGAR loop and the pipeline above it never call a checking
//! engine directly any more: they talk to a [`CheckBackend`], which
//! answers one compiled property under one exclusion mask per call. Two
//! implementations exist:
//!
//! * [`ExplicitBackend`] — the explicit-state engine in this crate,
//!   answering properties as queries over a cached
//!   [`ReachGraph`] (the historical path, bit-for-bit unchanged);
//! * `BmcBackend` in `procheck-symbolic` — a bounded model checker that
//!   bit-blasts the same [`CompiledModel`] into CNF and solves it with
//!   an in-repo CDCL solver.
//!
//! The seam's answer type is [`BackendVerdict`], which is deliberately
//! *wider* than [`Verdict`]: a bounded engine that exhausts its bound
//! without finding a violation has **not** proved the property; it
//! reports [`BackendVerdict::BoundReached`], a settled-but-weaker
//! outcome the caller must surface as such — never silently as a proof.
//! The explicit engine is complete over the reachable graph and always
//! returns [`BackendVerdict::Definite`].

use crate::budget::BudgetMeter;
use crate::checker::{
    check_on_graph_budgeted, CheckError, CompiledModel, CompiledProperty, QueryStats, Verdict,
};
use crate::reach::ReachGraph;
use procheck_ident::CmdIdSet;

/// A backend's answer to one property query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendVerdict {
    /// A definite verdict: holds/violated (or reachable/unreachable),
    /// with the same meaning as the explicit engine's [`Verdict`].
    Definite(Verdict),
    /// The engine searched every behaviour of length ≤ `k` and found no
    /// violation. Weaker than `Definite(Holds)`: longer behaviours are
    /// unexamined. Cross-validation treats this as *agreement* with a
    /// definite pass, never as an independent proof.
    BoundReached(usize),
}

/// One checking engine behind the seam. Implementations must be pure
/// functions of `(model, property, excluded)` — deterministic, no
/// hidden state between calls — so CEGAR refinement sequences and
/// cross-validation comparisons are reproducible.
pub trait CheckBackend {
    /// A stable, lower-case engine name (`"explicit"`, `"bmc"`),
    /// used in telemetry and divergence reports.
    fn name(&self) -> &'static str;

    /// Answers `property` on `model` with the commands in `excluded`
    /// removed (the CEGAR mask). `limit` bounds interned product
    /// states for graph-backed engines; symbolic engines may ignore
    /// it. `meter` charges the run-wide budget; `stats` absorbs the
    /// query's work counters.
    ///
    /// # Errors
    ///
    /// Propagates the engine's [`CheckError`]s; a violated verdict
    /// whose trace fails replay validation on the source model must
    /// surface as [`CheckError::BackendDivergence`], never as a
    /// verdict.
    fn answer(
        &self,
        model: &CompiledModel,
        property: &CompiledProperty,
        excluded: &CmdIdSet,
        limit: usize,
        meter: &BudgetMeter,
        stats: &mut QueryStats,
    ) -> Result<BackendVerdict, CheckError>;
}

/// The explicit-state engine as a backend: answers every query over a
/// prebuilt [`ReachGraph`] via
/// [`check_on_graph_budgeted`], exactly as the pipeline always has.
/// Complete over the graph, so every answer is
/// [`BackendVerdict::Definite`].
pub struct ExplicitBackend<'g> {
    /// The cached reachability graph of the model under check.
    pub graph: &'g ReachGraph,
}

impl CheckBackend for ExplicitBackend<'_> {
    fn name(&self) -> &'static str {
        "explicit"
    }

    fn answer(
        &self,
        model: &CompiledModel,
        property: &CompiledProperty,
        excluded: &CmdIdSet,
        limit: usize,
        meter: &BudgetMeter,
        stats: &mut QueryStats,
    ) -> Result<BackendVerdict, CheckError> {
        check_on_graph_budgeted(model, self.graph, property, excluded, limit, meter, stats)
            .map(BackendVerdict::Definite)
    }
}
