//! Counterexample traces.
//!
//! A counterexample is a finite path for safety violations, or a *lasso*
//! (path + cycle) for liveness violations. Each step records the fired
//! command's label — the CEGAR loop (paper §IV-B) asks the cryptographic
//! protocol verifier about exactly these labels.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One step of a counterexample: the command that led here and the full
/// variable assignment afterwards.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStep {
    /// Label of the command that produced this state (`init` for the
    /// first step, `stutter` for deadlock self-loops).
    pub label: String,
    /// Variable assignment in this state.
    pub state: BTreeMap<String, String>,
}

/// A counterexample trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counterexample {
    /// The steps, starting from an initial state.
    pub steps: Vec<TraceStep>,
    /// For liveness violations, the index at which the infinite cycle
    /// begins (the trace repeats from here forever). `None` for safety.
    pub lasso_start: Option<usize>,
}

impl Counterexample {
    /// Labels of all commands fired along the trace (without `init`).
    pub fn command_labels(&self) -> Vec<&str> {
        self.steps
            .iter()
            .skip(1)
            .map(|s| s.label.as_str())
            .collect()
    }

    /// True if this is a liveness (lasso) counterexample.
    pub fn is_lasso(&self) -> bool {
        self.lasso_start.is_some()
    }

    /// The value of `var` in the final state, if present.
    pub fn final_value(&self, var: &str) -> Option<&str> {
        self.steps.last()?.state.get(var).map(|s| s.as_str())
    }
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            if Some(i) == self.lasso_start {
                writeln!(f, "-- loop starts here --")?;
            }
            let assign: Vec<String> = step.state.iter().map(|(k, v)| format!("{k}={v}")).collect();
            writeln!(f, "step {i} [{}]: {}", step.label, assign.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ce() -> Counterexample {
        Counterexample {
            steps: vec![
                TraceStep {
                    label: "init".into(),
                    state: BTreeMap::from([("x".into(), "0".into())]),
                },
                TraceStep {
                    label: "bump".into(),
                    state: BTreeMap::from([("x".into(), "1".into())]),
                },
            ],
            lasso_start: Some(1),
        }
    }

    #[test]
    fn labels_skip_init() {
        assert_eq!(ce().command_labels(), vec!["bump"]);
    }

    #[test]
    fn final_value_lookup() {
        assert_eq!(ce().final_value("x"), Some("1"));
        assert_eq!(ce().final_value("y"), None);
    }

    #[test]
    fn display_marks_loop() {
        let text = ce().to_string();
        assert!(text.contains("-- loop starts here --"));
        assert!(text.contains("step 1 [bump]: x=1"));
    }
}
