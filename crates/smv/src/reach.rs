//! Cached reachable-state graphs ("explore once, check many").
//!
//! The explicit-state engine used to re-explore the composed model's
//! reachable state space once per property, even though every property
//! sliced to the same threat configuration sees the *same* graph. A
//! [`ReachGraph`] is that graph, fully explored once and kept:
//!
//! * a **packed state arena** — when the product of the declared domain
//!   sizes fits 64 bits, each state is bit-packed into one `u64` key
//!   (`PackLayout`); wider models fall back to the boxed value-vector
//!   encoding the interner used before;
//! * **CSR successor adjacency** — per node, the enabled commands and
//!   their successor states, in command declaration order (plus the
//!   deadlock stutter self-loop), so queries never re-evaluate guards;
//! * **predecessor links** (CSR as well), so counterexample paths can be
//!   reconstructed or goals back-propagated without re-search;
//! * **BFS parent pointers** from the original exploration — the
//!   shortest-path tree every safety counterexample is rebuilt from.
//!
//! Properties are then answered as *queries* over this graph (direct
//! scans for invariants/reachability, a product BFS carrying the monitor
//! bit for precedence/response and CEGAR-refined re-checks) — see
//! [`crate::checker::check_on_graph`]. Queries visit graph nodes by
//! index; they never touch the interning table, which is dropped once
//! construction finishes.

use crate::checker::CheckStats;

/// Per-variable value index (position in the declared domain).
pub type Value = u16;

/// Sentinel command index for the deadlock stutter self-loop.
pub const STUTTER_CMD: u32 = u32::MAX;

/// Sentinel parent id for initial states.
pub(crate) const NO_PARENT: u32 = u32::MAX;

/// Bit layout packing one state (a value-index per variable) into a
/// `u64`. Variable `i` occupies `widths[i]` bits starting at
/// `shifts[i]`; variables with singleton domains occupy zero bits.
#[derive(Debug, Clone)]
pub(crate) struct PackLayout {
    shifts: Vec<u8>,
    widths: Vec<u8>,
}

impl PackLayout {
    /// Computes the layout for the given domain sizes, or `None` when the
    /// packed representation does not fit 64 bits.
    pub(crate) fn for_domains(domain_sizes: &[usize]) -> Option<PackLayout> {
        let mut shifts = Vec::with_capacity(domain_sizes.len());
        let mut widths = Vec::with_capacity(domain_sizes.len());
        let mut total: u32 = 0;
        for &d in domain_sizes {
            let width = if d <= 1 {
                0u8
            } else {
                (usize::BITS - (d - 1).leading_zeros()) as u8
            };
            if total + width as u32 > 64 {
                return None;
            }
            shifts.push(total as u8);
            widths.push(width);
            total += width as u32;
        }
        Some(PackLayout { shifts, widths })
    }

    /// Packs a state into its `u64` key.
    pub(crate) fn pack(&self, s: &[Value]) -> u64 {
        debug_assert_eq!(s.len(), self.shifts.len());
        let mut key = 0u64;
        for (i, &v) in s.iter().enumerate() {
            key |= (v as u64) << self.shifts[i];
        }
        key
    }

    /// Unpacks a `u64` key back into per-variable value indices.
    pub(crate) fn unpack(&self, key: u64, out: &mut [Value]) {
        debug_assert_eq!(out.len(), self.shifts.len());
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.extract(key, i);
        }
    }

    /// Variable `i`'s `(shift, width)` field position — the guard
    /// lowering precomputes per-atom masks from it.
    #[inline]
    pub(crate) fn field(&self, i: usize) -> (u8, u8) {
        (self.shifts[i], self.widths[i])
    }

    /// Bit mask covering variable `i`'s field in the packed key (0 for
    /// zero-width singleton domains, whose value never occupies bits).
    /// The partial-order reduction derives per-command read/write sets
    /// from these masks.
    #[inline]
    pub(crate) fn field_mask(&self, i: usize) -> u64 {
        let width = self.widths[i];
        if width == 0 {
            0
        } else {
            (u64::MAX >> (64 - u32::from(width))) << self.shifts[i]
        }
    }

    /// Reads variable `i`'s value index straight out of a packed key —
    /// the packed-arena fast path's per-atom read, replacing a full
    /// unpack into a scratch vector.
    #[inline]
    pub(crate) fn extract(&self, key: u64, i: usize) -> Value {
        let width = self.widths[i];
        if width == 0 {
            0
        } else {
            ((key >> self.shifts[i]) & ((1u64 << width) - 1)) as Value
        }
    }

    /// Lowers a command's update list to a `(clear, set)` mask pair:
    /// applying the command to a packed state is `(key & clear) | set`,
    /// with no unpack/repack round trip.
    pub(crate) fn update_masks(&self, updates: &[(usize, Value)]) -> (u64, u64) {
        let mut clear = !0u64;
        let mut set = 0u64;
        for &(i, value) in updates {
            let width = self.widths[i];
            if width == 0 {
                // Singleton domain: the only value is 0, nothing stored.
                continue;
            }
            let mask = ((1u64 << width) - 1) << self.shifts[i];
            clear &= !mask;
            set |= (value as u64) << self.shifts[i];
        }
        (clear, set)
    }
}

/// The state store behind a [`ReachGraph`]: packed `u64` keys when the
/// domains fit, the wide value-vector encoding otherwise.
#[derive(Debug)]
pub(crate) enum StateArena {
    /// One `u64` per state.
    Packed { layout: PackLayout, keys: Vec<u64> },
    /// Flat `num_vars`-stride value-index arena.
    Wide { num_vars: usize, values: Vec<Value> },
}

impl StateArena {
    pub(crate) fn len(&self) -> usize {
        match self {
            StateArena::Packed { keys, .. } => keys.len(),
            StateArena::Wide { num_vars, values } => {
                if *num_vars == 0 {
                    // Zero-variable models have exactly one (empty) state
                    // once anything is interned; the wide arena cannot
                    // count it by stride.
                    usize::from(!values.is_empty())
                } else {
                    values.len() / num_vars
                }
            }
        }
    }

    /// Copies node `id`'s state into `out` (`out.len() == num_vars`).
    pub(crate) fn load(&self, id: u32, out: &mut [Value]) {
        match self {
            StateArena::Packed { layout, keys } => layout.unpack(keys[id as usize], out),
            StateArena::Wide { num_vars, values } => {
                let start = id as usize * num_vars;
                out.copy_from_slice(&values[start..start + num_vars]);
            }
        }
    }
}

/// A fully-explored reachable state graph for one model.
///
/// Built by [`crate::checker::build_reach_graph`]; immutable afterwards.
/// Shared (e.g. behind an `Arc` in a per-threat-configuration cache) so
/// every property keyed to the same model answers its query against one
/// exploration instead of re-running BFS.
#[derive(Debug)]
pub struct ReachGraph {
    pub(crate) num_vars: usize,
    pub(crate) arena: StateArena,
    /// BFS parent node per node ([`NO_PARENT`] for initial states).
    pub(crate) parent_node: Vec<u32>,
    /// Command index of the edge from the BFS parent.
    pub(crate) parent_cmd: Vec<u32>,
    /// CSR offsets into `succ_cmd`/`succ_node` (length `nodes + 1`).
    pub(crate) succ_off: Vec<u32>,
    /// Command index per successor edge ([`STUTTER_CMD`] for stutters).
    pub(crate) succ_cmd: Vec<u32>,
    /// Successor node per edge.
    pub(crate) succ_node: Vec<u32>,
    /// CSR offsets into `pred` (length `nodes + 1`).
    pub(crate) pred_off: Vec<u32>,
    /// Predecessor node per incoming edge, grouped by target.
    pub(crate) pred: Vec<u32>,
    /// The first `init_count` nodes are the (distinct) initial states.
    pub(crate) init_count: u32,
    /// Whether the arena uses the packed `u64` encoding.
    pub(crate) packed: bool,
    /// Number of BFS levels (depth layers, counting the initial one).
    pub(crate) levels: u32,
    /// Widest single BFS level encountered during exploration.
    pub(crate) peak_level: u64,
    /// Worker threads the exploration ran with (1 = serial path).
    pub(crate) workers: u32,
    /// Exploration cost of building this graph.
    pub(crate) stats: CheckStats,
}

impl ReachGraph {
    /// Number of reachable states.
    pub fn node_count(&self) -> usize {
        self.arena.len()
    }

    /// Number of successor edges (including deadlock stutters).
    pub fn edge_count(&self) -> usize {
        self.succ_node.len()
    }

    /// Number of distinct initial states (nodes `0..init_count`).
    pub fn init_count(&self) -> u32 {
        self.init_count
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// True when states are stored as packed `u64` keys.
    pub fn is_packed(&self) -> bool {
        self.packed
    }

    /// What exploring this graph cost (states interned, transitions
    /// generated, peak BFS frontier).
    pub fn build_stats(&self) -> CheckStats {
        self.stats
    }

    /// Number of BFS levels (depth layers) the exploration walked.
    /// Identical for the serial and parallel paths by construction.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Widest single BFS level seen while exploring.
    pub fn peak_level(&self) -> u64 {
        self.peak_level
    }

    /// Worker threads exploration ran with (1 = serial path).
    pub fn explore_workers(&self) -> u32 {
        self.workers
    }

    /// BFS parent edge of `id` as `(parent node, command index)`, or
    /// `None` for initial states.
    pub fn parent_edge(&self, id: u32) -> Option<(u32, u32)> {
        let p = self.parent_node[id as usize];
        (p != NO_PARENT).then(|| (p, self.parent_cmd[id as usize]))
    }

    /// Node `id`'s state as per-variable value indices (test/debug aid).
    pub fn state_of(&self, id: u32) -> Vec<u16> {
        let mut out = vec![0u16; self.num_vars];
        self.arena.load(id, &mut out);
        out
    }

    /// Successor edges of `id` as `(command index, successor node)`, in
    /// command declaration order.
    pub fn successors(&self, id: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.succ_off[id as usize] as usize;
        let hi = self.succ_off[id as usize + 1] as usize;
        self.succ_cmd[lo..hi]
            .iter()
            .copied()
            .zip(self.succ_node[lo..hi].iter().copied())
    }

    /// Predecessor nodes of `id` (sources of incoming edges, ascending).
    pub fn predecessors(&self, id: u32) -> &[u32] {
        let lo = self.pred_off[id as usize] as usize;
        let hi = self.pred_off[id as usize + 1] as usize;
        &self.pred[lo..hi]
    }

    /// Copies node `id`'s state (value indices) into `out`.
    pub(crate) fn load_state(&self, id: u32, out: &mut [Value]) {
        self.arena.load(id, out);
    }

    /// Builds the predecessor CSR from the successor lists (counting
    /// sort, so each node's predecessors come out ascending).
    ///
    /// Single-buffer counting sort: `counts[v]` starts as node `v`'s
    /// start offset and doubles as its write cursor; after scattering,
    /// `counts[v]` has advanced to `v`'s *end* offset, which is node
    /// `v + 1`'s start — one `copy_within` shift recovers the offset
    /// array without the second `counts.clone()` allocation.
    pub(crate) fn build_predecessors(&mut self) {
        let n = self.arena.len();
        let mut counts = vec![0u32; n + 1];
        for &v in &self.succ_node {
            counts[v as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut pred = vec![0u32; self.succ_node.len()];
        for u in 0..n {
            let lo = self.succ_off[u] as usize;
            let hi = self.succ_off[u + 1] as usize;
            for &v in &self.succ_node[lo..hi] {
                pred[counts[v as usize] as usize] = u as u32;
                counts[v as usize] += 1;
            }
        }
        // counts[v] is now v's end offset == (v + 1)'s start offset.
        counts.copy_within(0..n, 1);
        counts[0] = 0;
        self.pred_off = counts;
        self.pred = pred;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_layout_roundtrips() {
        let layout = PackLayout::for_domains(&[3, 1, 7, 2]).expect("fits");
        let states = [
            vec![0u16, 0, 0, 0],
            vec![2, 0, 6, 1],
            vec![1, 0, 3, 0],
            vec![2, 0, 0, 1],
        ];
        let mut out = vec![0u16; 4];
        for s in &states {
            layout.unpack(layout.pack(s), &mut out);
            assert_eq!(&out, s);
        }
    }

    #[test]
    fn pack_layout_rejects_wide_products() {
        // 11 variables × 64-value domains = 66 bits: does not fit.
        let sizes = vec![64usize; 11];
        assert!(PackLayout::for_domains(&sizes).is_none());
        // 10 × 6 bits = 60 bits: fits.
        assert!(PackLayout::for_domains(&sizes[..10]).is_some());
    }

    #[test]
    fn singleton_domains_take_no_bits() {
        let layout = PackLayout::for_domains(&[1; 100]).expect("zero bits each");
        assert_eq!(layout.pack(&[0u16; 100]), 0);
        let mut out = vec![9u16; 100];
        layout.unpack(0, &mut out);
        assert!(out.iter().all(|&v| v == 0));
    }

    #[test]
    fn field_mask_matches_field_position() {
        let layout = PackLayout::for_domains(&[3, 1, 7, 2]).expect("fits");
        for i in 0..4 {
            let (shift, width) = layout.field(i);
            let expect = if width == 0 {
                0
            } else {
                ((1u64 << width) - 1) << shift
            };
            assert_eq!(layout.field_mask(i), expect);
        }
        // Distinct fields occupy disjoint bits; singletons occupy none.
        assert_eq!(layout.field_mask(0) & layout.field_mask(2), 0);
        assert_eq!(layout.field_mask(1), 0);
    }

    #[test]
    fn extract_matches_unpack() {
        let layout = PackLayout::for_domains(&[3, 1, 7, 2]).expect("fits");
        let states = [vec![0u16, 0, 0, 0], vec![2, 0, 6, 1], vec![1, 0, 3, 0]];
        let mut out = vec![0u16; 4];
        for s in &states {
            let key = layout.pack(s);
            layout.unpack(key, &mut out);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(layout.extract(key, i), v);
            }
        }
    }

    #[test]
    fn update_masks_apply_like_unpack_update_repack() {
        let layout = PackLayout::for_domains(&[3, 1, 7, 2]).expect("fits");
        let updates = [(0usize, 2u16), (1, 0), (2, 5)];
        let (clear, set) = layout.update_masks(&updates);
        let start = layout.pack(&[1, 0, 6, 1]);
        let succ = (start & clear) | set;
        // Reference semantics: unpack, apply updates, repack.
        let mut s = vec![0u16; 4];
        layout.unpack(start, &mut s);
        for &(i, v) in &updates {
            s[i] = v;
        }
        assert_eq!(succ, layout.pack(&s));
    }

    /// Predecessors come out ascending per node, and the in-place cursor
    /// trick leaves the offset array identical to the two-buffer version.
    #[test]
    fn build_predecessors_ascending_order() {
        // 4 nodes; successor lists deliberately name targets from
        // high-numbered sources first (node 3 -> 0 precedes 1 -> 0 in no
        // list, but 2 and 3 both point at 1 and 0 out of source order).
        let mut g = ReachGraph {
            num_vars: 1,
            arena: StateArena::Wide {
                num_vars: 1,
                values: vec![0, 1, 2, 3],
            },
            parent_node: vec![NO_PARENT; 4],
            parent_cmd: vec![NO_PARENT; 4],
            succ_off: vec![0, 2, 4, 5, 7],
            succ_cmd: vec![0, 1, 0, 1, 0, 0, 1],
            //           0 -> {1, 3}, 1 -> {0, 3}, 2 -> {1}, 3 -> {0, 1}
            succ_node: vec![1, 3, 0, 3, 1, 0, 1],
            pred_off: Vec::new(),
            pred: Vec::new(),
            init_count: 1,
            packed: false,
            levels: 1,
            peak_level: 1,
            workers: 1,
            stats: CheckStats::default(),
        };
        g.build_predecessors();
        assert_eq!(g.pred_off, vec![0, 2, 5, 5, 7]);
        assert_eq!(g.predecessors(0), &[1, 3]);
        assert_eq!(g.predecessors(1), &[0, 2, 3]);
        assert_eq!(g.predecessors(2), &[0u32; 0]);
        assert_eq!(g.predecessors(3), &[0, 1]);
        for v in 0..4 {
            assert!(g.predecessors(v).windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn wide_arena_roundtrips() {
        let arena = StateArena::Wide {
            num_vars: 3,
            values: vec![1, 2, 3, 4, 5, 6],
        };
        assert_eq!(arena.len(), 2);
        let mut out = [0u16; 3];
        arena.load(1, &mut out);
        assert_eq!(out, [4, 5, 6]);
        arena.load(0, &mut out);
        assert_eq!(out, [1, 2, 3]);
    }
}
