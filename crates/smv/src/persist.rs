//! Graph persistence and stable model fingerprinting for the cross-run
//! analysis store.
//!
//! A [`ReachGraph`] is expensive to build and cheap to store: the packed
//! state arena, CSR successor adjacency, and BFS parent pointers are
//! plain integer arrays. This module serializes them
//! ([`ReachGraph::to_data`]) and reconstructs a graph from a stored
//! payload ([`ReachGraph::from_data`]) against a freshly compiled model.
//!
//! # Why dense ids may reach disk but `Sym`s must not
//!
//! `Sym(u32)` interning ids are process-global: they depend on every
//! string interned before, in order, anywhere in the process, so the
//! same label gets different ids in different runs. They never reach
//! disk. The dense ids inside a [`CompiledModel`] (`VarId`/`ValId`/
//! command indices) are different: they index the model's *own* tables
//! in declaration order, and threat-model construction is deterministic
//! — the same FSMs and `ThreatConfig` produce the same variable order,
//! domain order, and command order in every process. A stored graph is
//! therefore valid exactly for models whose [`model_fingerprint`]
//! (computed over resolved strings) matches the one it was stored
//! under; the pipeline keys graph artifacts by that fingerprint, and
//! [`ReachGraph::from_data`] re-validates every index against the live
//! model before the graph is used.

use crate::checker::{CExpr, CheckStats, CompiledModel};
use crate::reach::{PackLayout, ReachGraph, StateArena, STUTTER_CMD};
use procheck_store::{ByteReader, ByteWriter, Fingerprint, StableHasher};

/// Plain-data image of a [`ReachGraph`]: every field a stored graph
/// needs, as integer arrays. The predecessor CSR is deliberately absent
/// — it is derived data, rebuilt in linear time at load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachGraphData {
    /// Declared variable count of the model the graph was explored for.
    pub num_vars: u64,
    /// True when `keys` holds the packed arena; false when `values`
    /// holds the wide arena.
    pub packed: bool,
    /// Packed `u64` state keys (empty unless `packed`).
    pub keys: Vec<u64>,
    /// Wide arena value indices, `num_vars` per state (empty when
    /// `packed`).
    pub values: Vec<u16>,
    /// BFS parent node per node.
    pub parent_node: Vec<u32>,
    /// Command index of the edge from the BFS parent.
    pub parent_cmd: Vec<u32>,
    /// CSR offsets into `succ_cmd`/`succ_node`.
    pub succ_off: Vec<u32>,
    /// Command index per successor edge.
    pub succ_cmd: Vec<u32>,
    /// Successor node per edge.
    pub succ_node: Vec<u32>,
    /// Count of initial states (nodes `0..init_count`).
    pub init_count: u32,
    /// BFS levels walked by the original exploration.
    pub levels: u32,
    /// Widest BFS level of the original exploration.
    pub peak_level: u64,
    /// Worker threads the original exploration ran with.
    pub workers: u32,
    /// Exploration cost of the original build (`states`, `transitions`,
    /// `peak_queue`).
    pub stats: [u64; 3],
}

impl ReachGraphData {
    /// Encodes to a store payload (hand-rolled framing, no serde).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u64(self.num_vars);
        w.u8(u8::from(self.packed));
        w.vec_u64(&self.keys);
        w.vec_u16(&self.values);
        w.vec_u32(&self.parent_node);
        w.vec_u32(&self.parent_cmd);
        w.vec_u32(&self.succ_off);
        w.vec_u32(&self.succ_cmd);
        w.vec_u32(&self.succ_node);
        w.u32(self.init_count);
        w.u32(self.levels);
        w.u64(self.peak_level);
        w.u32(self.workers);
        for s in self.stats {
            w.u64(s);
        }
        w.into_bytes()
    }

    /// Decodes a store payload.
    ///
    /// # Errors
    ///
    /// A description of the decode failure; the caller treats it as
    /// record corruption (a cold miss).
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        let mut r = ByteReader::new(payload);
        let mut run = || -> Result<ReachGraphData, procheck_store::DecodeError> {
            let num_vars = r.u64()?;
            let packed = r.u8()? != 0;
            let keys = r.vec_u64()?;
            let values = r.vec_u16()?;
            let parent_node = r.vec_u32()?;
            let parent_cmd = r.vec_u32()?;
            let succ_off = r.vec_u32()?;
            let succ_cmd = r.vec_u32()?;
            let succ_node = r.vec_u32()?;
            let init_count = r.u32()?;
            let levels = r.u32()?;
            let peak_level = r.u64()?;
            let workers = r.u32()?;
            let stats = [r.u64()?, r.u64()?, r.u64()?];
            r.finish()?;
            Ok(ReachGraphData {
                num_vars,
                packed,
                keys,
                values,
                parent_node,
                parent_cmd,
                succ_off,
                succ_cmd,
                succ_node,
                init_count,
                levels,
                peak_level,
                workers,
                stats,
            })
        };
        run().map_err(|e| format!("graph payload: {e}"))
    }
}

impl ReachGraph {
    /// Serializes this graph into its plain-data image.
    pub fn to_data(&self) -> ReachGraphData {
        let (packed, keys, values) = match &self.arena {
            StateArena::Packed { keys, .. } => (true, keys.clone(), Vec::new()),
            StateArena::Wide { values, .. } => (false, Vec::new(), values.clone()),
        };
        ReachGraphData {
            num_vars: self.num_vars as u64,
            packed,
            keys,
            values,
            parent_node: self.parent_node.clone(),
            parent_cmd: self.parent_cmd.clone(),
            succ_off: self.succ_off.clone(),
            succ_cmd: self.succ_cmd.clone(),
            succ_node: self.succ_node.clone(),
            init_count: self.init_count,
            levels: self.levels,
            peak_level: self.peak_level,
            workers: self.workers,
            stats: [
                self.stats.states,
                self.stats.transitions,
                self.stats.peak_queue,
            ],
        }
    }

    /// Reconstructs a graph from a stored image against a freshly
    /// compiled `model`, re-deriving the pack layout from the live
    /// domains and validating every node, edge, and command index before
    /// anything downstream can read it. The predecessor CSR is rebuilt.
    ///
    /// # Errors
    ///
    /// A description of the first inconsistency between the image and
    /// the model (the caller treats any error as a cold miss, never as
    /// an answer).
    pub fn from_data(model: &CompiledModel, data: &ReachGraphData) -> Result<ReachGraph, String> {
        if data.num_vars as usize != model.num_vars() {
            return Err(format!(
                "variable count mismatch: stored {}, model has {}",
                data.num_vars,
                model.num_vars()
            ));
        }
        let domain_sizes: Vec<usize> = model.vars.iter().map(|v| v.domain.len()).collect();
        let arena = if data.packed {
            if !data.values.is_empty() {
                return Err("packed graph carries a wide arena".to_string());
            }
            let layout = PackLayout::for_domains(&domain_sizes).ok_or_else(|| {
                "stored graph is packed but the model does not fit 64 bits".to_string()
            })?;
            StateArena::Packed {
                layout,
                keys: data.keys.clone(),
            }
        } else {
            if !data.keys.is_empty() {
                return Err("wide graph carries packed keys".to_string());
            }
            if model.num_vars() > 0 && !data.values.len().is_multiple_of(model.num_vars()) {
                return Err(format!(
                    "wide arena length {} is not a multiple of {} variables",
                    data.values.len(),
                    model.num_vars()
                ));
            }
            StateArena::Wide {
                num_vars: model.num_vars(),
                values: data.values.clone(),
            }
        };
        let n = arena.len();
        let edges = data.succ_node.len();
        if data.parent_node.len() != n || data.parent_cmd.len() != n {
            return Err(format!(
                "parent arrays sized {}/{} for {n} nodes",
                data.parent_node.len(),
                data.parent_cmd.len()
            ));
        }
        if data.succ_off.len() != n + 1 || data.succ_cmd.len() != edges {
            return Err(format!(
                "CSR shape mismatch: {} offsets, {} commands, {edges} targets for {n} nodes",
                data.succ_off.len(),
                data.succ_cmd.len()
            ));
        }
        if data.succ_off.first().copied().unwrap_or(0) != 0
            || data.succ_off.last().copied().unwrap_or(0) as usize != edges
            || data.succ_off.windows(2).any(|w| w[0] > w[1])
        {
            return Err("successor offsets are not a monotone CSR".to_string());
        }
        if data.init_count as usize > n {
            return Err(format!(
                "{} initial states among {n} nodes",
                data.init_count
            ));
        }
        let cmds = model.command_count() as u32;
        if data.succ_node.iter().any(|&v| v as usize >= n)
            || data.succ_cmd.iter().any(|&c| c != STUTTER_CMD && c >= cmds)
        {
            return Err("edge references an out-of-range node or command".to_string());
        }
        if data
            .parent_node
            .iter()
            .zip(&data.parent_cmd)
            .any(|(&p, &c)| {
                p != crate::reach::NO_PARENT && (p as usize >= n || (c != STUTTER_CMD && c >= cmds))
            })
        {
            return Err("parent pointer references an out-of-range node or command".to_string());
        }
        // Every stored state must decode to in-domain value indices, or
        // trace rendering would index past a domain table.
        let mut scratch = vec![0u16; model.num_vars()];
        for id in 0..n {
            arena.load(id as u32, &mut scratch);
            for (i, &v) in scratch.iter().enumerate() {
                if v as usize >= domain_sizes[i].max(1) {
                    return Err(format!(
                        "node {id} holds out-of-domain value {v} for variable {i}"
                    ));
                }
            }
        }
        let mut graph = ReachGraph {
            num_vars: model.num_vars(),
            arena,
            parent_node: data.parent_node.clone(),
            parent_cmd: data.parent_cmd.clone(),
            succ_off: data.succ_off.clone(),
            succ_cmd: data.succ_cmd.clone(),
            succ_node: data.succ_node.clone(),
            pred_off: Vec::new(),
            pred: Vec::new(),
            init_count: data.init_count,
            packed: data.packed,
            levels: data.levels,
            peak_level: data.peak_level,
            workers: data.workers,
            stats: CheckStats {
                states: data.stats[0],
                transitions: data.stats[1],
                peak_queue: data.stats[2],
            },
        };
        graph.build_predecessors();
        Ok(graph)
    }
}

fn absorb_expr(h: &mut StableHasher, e: &CExpr) {
    match e {
        CExpr::True => h.write_u8(0),
        CExpr::False => h.write_u8(1),
        CExpr::Eq(v, x) => {
            h.write_u8(2);
            h.write_u32(v.index() as u32);
            h.write_u16(x.index() as u16);
        }
        CExpr::Ne(v, x) => {
            h.write_u8(3);
            h.write_u32(v.index() as u32);
            h.write_u16(x.index() as u16);
        }
        CExpr::In(v, xs) => {
            h.write_u8(4);
            h.write_u32(v.index() as u32);
            h.write_u64(xs.len() as u64);
            for x in xs {
                h.write_u16(x.index() as u16);
            }
        }
        CExpr::And(xs) => {
            h.write_u8(5);
            h.write_u64(xs.len() as u64);
            for x in xs {
                absorb_expr(h, x);
            }
        }
        CExpr::Or(xs) => {
            h.write_u8(6);
            h.write_u64(xs.len() as u64);
            for x in xs {
                absorb_expr(h, x);
            }
        }
        CExpr::Not(x) => {
            h.write_u8(7);
            absorb_expr(h, x);
        }
    }
}

/// Stable 128-bit fingerprint of a compiled model: variable names,
/// domains, and initial values as resolved strings, then guards,
/// updates, and fairness structurally (dense indices are admissible —
/// they index the tables just absorbed; see the module docs). Two
/// processes compiling the same composed threat model produce the same
/// fingerprint; any change to the model — a different FSM, threat
/// configuration, or cone-of-influence slice — changes it.
pub fn model_fingerprint(model: &CompiledModel) -> Fingerprint {
    fingerprint_with_labels(model, "compiled-model-v1", |label| (label, ""))
}

/// [`model_fingerprint`] with command labels hashed *without* their
/// trailing `#<uniq>` disambiguation suffix.
///
/// Threat-model construction numbers commands sequentially across the
/// whole build, so inserting one command shifts the suffix of every
/// later label even when the later commands are otherwise untouched.
/// The suffix carries no semantics — guards, updates, and the CEGAR
/// loop's label *prefix* parsing decide every verdict — so two models
/// equal under this fingerprint check identically: same exploration,
/// same verdict, same iteration/refinement/query counts. Only the
/// user-visible trace strings can differ (they quote full labels),
/// which is why verdict reuse of trace-bearing outcomes is additionally
/// gated on the exact [`model_fingerprint`].
pub fn model_semantic_fingerprint(model: &CompiledModel) -> Fingerprint {
    fingerprint_with_labels(model, "compiled-model-semantic-v1", |label| {
        match label.rsplit_once('#') {
            Some((prefix, suffix))
                if !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()) =>
            {
                (prefix, "#")
            }
            _ => (label, ""),
        }
    })
}

/// Shared body of the two fingerprints: `project` maps each command
/// label to the `(text, marker)` pair actually absorbed — the marker
/// keeps a stripped label from colliding with a raw label that happens
/// to equal the stripped form.
fn fingerprint_with_labels(
    model: &CompiledModel,
    domain_tag: &str,
    project: impl Fn(&str) -> (&str, &'static str),
) -> Fingerprint {
    let mut h = StableHasher::with_domain(domain_tag);
    h.write_u64(model.vars.len() as u64);
    for v in &model.vars {
        h.write_str(v.name.as_str());
        h.write_u64(v.domain.len() as u64);
        for d in &v.domain {
            h.write_str(d.as_str());
        }
        h.write_u64(v.init.len() as u64);
        for i in &v.init {
            h.write_u16(i.index() as u16);
        }
    }
    h.write_u64(model.commands.len() as u64);
    for c in &model.commands {
        let (text, marker) = project(c.label.as_str());
        h.write_str(text);
        h.write_str(marker);
        absorb_expr(&mut h, &c.guard);
        h.write_u64(c.updates.len() as u64);
        for (var, val) in &c.updates {
            h.write_u32(var.index() as u32);
            h.write_u16(val.index() as u16);
        }
    }
    h.write_u64(model.fairness.len() as u64);
    for f in &model.fairness {
        absorb_expr(&mut h, f);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{build_reach_graph, check_on_graph, Property};
    use crate::expr::Expr;
    use crate::model::{GuardedCmd, Model};

    fn toggle_model() -> Model {
        let mut m = Model::new("toggle");
        m.declare_var("light", &["off", "on"], &["off"]);
        m.declare_var("count", &["zero", "one", "two"], &["zero"]);
        m.add_command(
            GuardedCmd::new("switch_on", Expr::var_eq("light", "off"))
                .set("light", "on")
                .set("count", "one"),
        );
        m.add_command(
            GuardedCmd::new("switch_off", Expr::var_eq("light", "on")).set("light", "off"),
        );
        m
    }

    #[test]
    fn graph_roundtrips_and_answers_identically() {
        let m = toggle_model();
        let compiled = CompiledModel::new(&m).unwrap();
        let graph = build_reach_graph(&m, 1000).unwrap();
        let data = graph.to_data();
        let bytes = data.encode();
        let decoded = ReachGraphData::decode(&bytes).unwrap();
        assert_eq!(decoded, data);
        let restored = ReachGraph::from_data(&compiled, &decoded).unwrap();
        assert_eq!(restored.node_count(), graph.node_count());
        assert_eq!(restored.edge_count(), graph.edge_count());
        assert_eq!(restored.build_stats(), graph.build_stats());
        for id in 0..graph.node_count() as u32 {
            assert_eq!(restored.state_of(id), graph.state_of(id));
            assert_eq!(restored.predecessors(id), graph.predecessors(id));
            assert_eq!(
                restored.successors(id).collect::<Vec<_>>(),
                graph.successors(id).collect::<Vec<_>>()
            );
        }
        // Checking on the restored graph matches the live one verbatim.
        let p = compiled
            .compile_property(&Property::reachable("on", Expr::var_eq("light", "on")))
            .unwrap();
        let excluded = compiled.exclusion_set();
        let mut live_stats = crate::checker::QueryStats::default();
        let mut warm_stats = crate::checker::QueryStats::default();
        let live = check_on_graph(&compiled, &graph, &p, &excluded, 1000, &mut live_stats).unwrap();
        let warm =
            check_on_graph(&compiled, &restored, &p, &excluded, 1000, &mut warm_stats).unwrap();
        assert_eq!(format!("{live:?}"), format!("{warm:?}"));
        assert_eq!(live_stats, warm_stats);
    }

    #[test]
    fn from_data_rejects_mismatched_model() {
        let m = toggle_model();
        let graph = build_reach_graph(&m, 1000).unwrap();
        let mut other = Model::new("other");
        other.declare_var("light", &["off", "on"], &["off"]);
        let other_compiled = CompiledModel::new(&other).unwrap();
        let err = ReachGraph::from_data(&other_compiled, &graph.to_data());
        assert!(err.is_err(), "one-variable model must reject two-var graph");
    }

    #[test]
    fn from_data_rejects_corrupt_indices() {
        let m = toggle_model();
        let compiled = CompiledModel::new(&m).unwrap();
        let graph = build_reach_graph(&m, 1000).unwrap();
        let data = graph.to_data();

        let mut bad = data.clone();
        bad.succ_node[0] = 10_000;
        assert!(ReachGraph::from_data(&compiled, &bad).is_err());

        let mut bad = data.clone();
        bad.succ_off[1] = u32::MAX;
        assert!(ReachGraph::from_data(&compiled, &bad).is_err());

        let mut bad = data.clone();
        bad.init_count = u32::MAX;
        assert!(ReachGraph::from_data(&compiled, &bad).is_err());

        let mut bad = data.clone();
        bad.parent_node.pop();
        assert!(ReachGraph::from_data(&compiled, &bad).is_err());

        if !data.keys.is_empty() {
            let mut bad = data;
            // An all-ones packed key decodes to out-of-domain values.
            *bad.keys.last_mut().unwrap() = u64::MAX;
            assert!(ReachGraph::from_data(&compiled, &bad).is_err());
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let m = toggle_model();
        let graph = build_reach_graph(&m, 1000).unwrap();
        let bytes = graph.to_data().encode();
        for cut in [0, 1, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(ReachGraphData::decode(&bytes[..cut]).is_err());
        }
        let mut long = bytes;
        long.push(0);
        assert!(ReachGraphData::decode(&long).is_err());
    }

    #[test]
    fn fingerprint_tracks_model_content() {
        let base = CompiledModel::new(&toggle_model()).unwrap();
        let again = CompiledModel::new(&toggle_model()).unwrap();
        assert_eq!(model_fingerprint(&base), model_fingerprint(&again));

        // Renaming a domain value changes the fingerprint even though
        // every dense index stays identical.
        let mut renamed = Model::new("toggle");
        renamed.declare_var("light", &["off", "dim"], &["off"]);
        renamed.declare_var("count", &["zero", "one", "two"], &["zero"]);
        renamed.add_command(
            GuardedCmd::new("switch_on", Expr::var_eq("light", "off"))
                .set("light", "dim")
                .set("count", "one"),
        );
        renamed.add_command(
            GuardedCmd::new("switch_off", Expr::var_eq("light", "dim")).set("light", "off"),
        );
        let renamed = CompiledModel::new(&renamed).unwrap();
        assert_ne!(model_fingerprint(&base), model_fingerprint(&renamed));

        // A guard change alone changes it too.
        let mut guard = toggle_model();
        guard.add_command(GuardedCmd::new("noop", Expr::var_eq("count", "two")));
        let guard = CompiledModel::new(&guard).unwrap();
        assert_ne!(model_fingerprint(&base), model_fingerprint(&guard));
    }

    /// The semantic fingerprint ignores `#<uniq>` label suffixes and
    /// nothing else.
    #[test]
    fn semantic_fingerprint_strips_uniq_suffixes_only() {
        let labeled = |a: &str, b: &str| {
            let mut m = Model::new("t");
            m.declare_var("light", &["off", "on"], &["off"]);
            m.add_command(GuardedCmd::new(a, Expr::var_eq("light", "off")).set("light", "on"));
            m.add_command(GuardedCmd::new(b, Expr::var_eq("light", "on")).set("light", "off"));
            CompiledModel::new(&m).unwrap()
        };
        let base = labeled("ue:recv:x:legit:-#0", "mme:recv:y:legit:-#1");
        let shifted = labeled("ue:recv:x:legit:-#7", "mme:recv:y:legit:-#8");
        assert_ne!(model_fingerprint(&base), model_fingerprint(&shifted));
        assert_eq!(
            model_semantic_fingerprint(&base),
            model_semantic_fingerprint(&shifted)
        );
        // A prefix change is semantic and must still be caught.
        let other = labeled("ue:recv:z:legit:-#0", "mme:recv:y:legit:-#1");
        assert_ne!(
            model_semantic_fingerprint(&base),
            model_semantic_fingerprint(&other)
        );
        // A non-numeric suffix is part of the label, not a uniq counter.
        let odd = labeled("ue:recv:x:legit:-#zz", "mme:recv:y:legit:-#1");
        assert_ne!(
            model_semantic_fingerprint(&base),
            model_semantic_fingerprint(&odd)
        );
        // Stripping never collides with a raw label equal to the prefix.
        let raw = labeled("ue:recv:x:legit:-", "mme:recv:y:legit:-#1");
        assert_ne!(
            model_semantic_fingerprint(&base),
            model_semantic_fingerprint(&raw)
        );
    }
}
