//! Boolean expressions over finite-domain model variables.
//!
//! Variables and values are referenced by interned symbol ([`Sym`]); the
//! checker resolves them against the model's declarations when compiling
//! the expression. Only current-state references are needed: guarded
//! commands express the next state through explicit assignments, not
//! `next()` constraints.
//!
//! Constructors accept anything `Into<Sym>` (`&str`, `String`, `Sym`), so
//! call sites read exactly as they did when these fields were `String`s;
//! the interning is invisible outside this layer.

use procheck_ident::Sym;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A boolean expression over model variables.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expr {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// `var = value`.
    Eq(Sym, Sym),
    /// `var != value`.
    Ne(Sym, Sym),
    /// `var ∈ {values…}`.
    In(Sym, Vec<Sym>),
    /// Conjunction (empty = true).
    And(Vec<Expr>),
    /// Disjunction (empty = false).
    Or(Vec<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Implication.
    Implies(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// `var = value` — the workhorse atom.
    pub fn var_eq(var: impl Into<Sym>, value: impl Into<Sym>) -> Self {
        Expr::Eq(var.into(), value.into())
    }

    /// `var != value`.
    pub fn var_ne(var: impl Into<Sym>, value: impl Into<Sym>) -> Self {
        Expr::Ne(var.into(), value.into())
    }

    /// `var ∈ {values…}`.
    pub fn var_in<I, S>(var: impl Into<Sym>, values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<Sym>,
    {
        Expr::In(var.into(), values.into_iter().map(Into::into).collect())
    }

    /// Conjunction of the given expressions.
    pub fn and<I: IntoIterator<Item = Expr>>(exprs: I) -> Self {
        Expr::And(exprs.into_iter().collect())
    }

    /// Disjunction of the given expressions.
    pub fn or<I: IntoIterator<Item = Expr>>(exprs: I) -> Self {
        Expr::Or(exprs.into_iter().collect())
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(expr: Expr) -> Self {
        Expr::Not(Box::new(expr))
    }

    /// Implication `a → b`.
    pub fn implies(a: Expr, b: Expr) -> Self {
        Expr::Implies(Box::new(a), Box::new(b))
    }

    /// All variable names referenced by the expression.
    pub fn variables(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<&'static str>) {
        match self {
            Expr::True | Expr::False => {}
            Expr::Eq(v, _) | Expr::Ne(v, _) | Expr::In(v, _) => out.push(v.as_str()),
            Expr::And(xs) | Expr::Or(xs) => {
                for x in xs {
                    x.collect_vars(out);
                }
            }
            Expr::Not(x) => x.collect_vars(out),
            Expr::Implies(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::True => f.write_str("TRUE"),
            Expr::False => f.write_str("FALSE"),
            Expr::Eq(v, x) => write!(f, "{v} = {x}"),
            Expr::Ne(v, x) => write!(f, "{v} != {x}"),
            Expr::In(v, xs) => {
                let vals: Vec<&str> = xs.iter().map(|s| s.as_str()).collect();
                write!(f, "{v} in {{{}}}", vals.join(", "))
            }
            Expr::And(xs) => {
                if xs.is_empty() {
                    return f.write_str("TRUE");
                }
                let parts: Vec<String> = xs.iter().map(|x| format!("({x})")).collect();
                f.write_str(&parts.join(" & "))
            }
            Expr::Or(xs) => {
                if xs.is_empty() {
                    return f.write_str("FALSE");
                }
                let parts: Vec<String> = xs.iter().map(|x| format!("({x})")).collect();
                f.write_str(&parts.join(" | "))
            }
            Expr::Not(x) => write!(f, "!({x})"),
            Expr::Implies(a, b) => write!(f, "({a}) -> ({b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = Expr::implies(
            Expr::var_eq("state", "registered"),
            Expr::or([Expr::var_eq("x", "1"), Expr::not(Expr::var_eq("y", "2"))]),
        );
        assert_eq!(
            e.to_string(),
            "(state = registered) -> ((x = 1) | (!(y = 2)))"
        );
        assert_eq!(Expr::And(vec![]).to_string(), "TRUE");
        assert_eq!(Expr::Or(vec![]).to_string(), "FALSE");
    }

    #[test]
    fn variable_collection_dedupes() {
        let e = Expr::and([
            Expr::var_eq("a", "1"),
            Expr::var_ne("b", "2"),
            Expr::var_in("a", ["1", "2"]),
        ]);
        assert_eq!(e.variables(), vec!["a", "b"]);
    }

    #[test]
    fn atoms_are_interned() {
        let a = Expr::var_eq("state", "registered");
        let b = Expr::var_eq(String::from("state"), "registered");
        assert_eq!(a, b, "same strings intern to the same symbols");
    }
}
