//! Finite-domain model-checking substrate (the paper's nuXmv role, §VI).
//!
//! ProChecker feeds its threat-instrumented model `IMP^μ` to a
//! general-purpose symbolic model checker and asks for counterexamples to
//! safety and liveness properties. This crate is that checker, built from
//! scratch for the reproduction:
//!
//! * [`model`] — models as *guarded commands* over variables with
//!   symbolic enum domains (the shape the paper's model generator emits
//!   as SMV);
//! * [`expr`] — the boolean expression language over those variables;
//! * [`checker`] — an explicit-state engine split into an explore phase
//!   (one interned-state BFS per model, producing a cached
//!   [`reach::ReachGraph`]) and an evaluate phase (invariants,
//!   reachability, precedence, and product-monitor + SCC response
//!   checks under optional fairness constraints, all answered as
//!   queries over that graph);
//! * [`reach`] — the cached reachable-state graph itself: packed state
//!   arena, CSR successor/predecessor adjacency, BFS parent pointers;
//! * [`coi`] — per-property cone-of-influence slicing: project a
//!   compiled model onto the variables a property can observe before
//!   exploring, and re-expand any counterexample to full-variable form
//!   at the report edge;
//! * [`trace`] — counterexample traces (finite paths for safety, lassos
//!   for liveness) with per-step command labels, consumable by the
//!   CEGAR loop's cryptographic feasibility check;
//! * [`smvformat`] — SMV-syntax emission, reproducing the paper's "model
//!   generator … outputs a SMV description".
//!
//! Explicit-state search is exact and fast at this problem's scale
//! (threat-composed NAS models stay well below a million reachable
//! states); see DESIGN.md §5.
//!
//! # Example
//!
//! ```
//! use procheck_smv::model::{Model, GuardedCmd};
//! use procheck_smv::expr::Expr;
//! use procheck_smv::checker::{check, Property, Verdict};
//!
//! let mut m = Model::new("toggle");
//! m.declare_var("light", &["off", "on"], &["off"]);
//! m.add_command(GuardedCmd::new("switch_on", Expr::var_eq("light", "off"))
//!     .set("light", "on"));
//! m.add_command(GuardedCmd::new("switch_off", Expr::var_eq("light", "on"))
//!     .set("light", "off"));
//!
//! // "the light is never stuck": on is reachable
//! let verdict = check(&m, &Property::reachable("can_turn_on", Expr::var_eq("light", "on")))
//!     .expect("valid model");
//! assert!(matches!(verdict, Verdict::Reachable(_)));
//! ```

pub mod backend;
pub mod budget;
pub mod checker;
pub mod coi;
pub mod expr;
pub mod fxhash;
pub mod model;
pub mod persist;
pub mod reach;
pub mod smvformat;
pub mod trace;

pub use backend::{BackendVerdict, CheckBackend, ExplicitBackend};
pub use budget::{Budget, BudgetExceeded, BudgetMeter};
pub use checker::{
    build_reach_graph_budgeted_opts, check, por_commute_hits_total, por_default, CompiledModel,
    CompiledProperty, Property, Verdict,
};
pub use coi::{expand_counterexample, slice_default, slice_for_property, ConeSig, SlicedModel};
pub use expr::Expr;
pub use model::{GuardedCmd, Model};
pub use persist::{model_fingerprint, model_semantic_fingerprint, ReachGraphData};
pub use reach::ReachGraph;
pub use trace::Counterexample;
