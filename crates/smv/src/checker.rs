//! Explicit-state checking engine.
//!
//! States are interned vectors of per-variable value indices. Safety
//! properties (invariants, reachability, precedence) are checked by BFS
//! with parent pointers for counterexample reconstruction. Response
//! properties `G (trigger → F response)` are checked on the product with
//! a one-bit obligation monitor: a violation is a reachable cycle whose
//! states all carry an undischarged obligation, and which satisfies every
//! fairness constraint (`JUSTICE`-style, as in nuXmv).

use crate::expr::Expr;
use crate::fxhash::{FxBuildHasher, FxHashMap};
use crate::model::Model;
use crate::trace::{Counterexample, TraceStep};
use procheck_telemetry::Collector;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default bound on explored product states.
pub const DEFAULT_STATE_LIMIT: usize = 4_000_000;

/// Cap on up-front visited-table/queue allocation. Exact domain-product
/// bounds below this are allocated exactly; anything larger starts here
/// and grows, so a sliced model with a huge *declared* product but a
/// small *reachable* set does not pay for the difference.
const PRESIZE_CAP: usize = 1 << 16;

/// Distinct product states interned since process start, across all
/// checks on all threads. Benchmarks read this to report states/second;
/// it is telemetry only and never feeds back into verdicts.
static STATES_EXPLORED: AtomicU64 = AtomicU64::new(0);

/// Reads the cumulative states-explored counter.
pub fn states_explored_total() -> u64 {
    STATES_EXPLORED.load(Ordering::Relaxed)
}

/// A property to check against a model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Property {
    /// `AG holds` — the expression is true in every reachable state.
    Invariant {
        /// Property name (for reports).
        name: String,
        /// The invariant expression.
        holds: Expr,
    },
    /// `EF goal` — is the goal reachable? (Attack-goal queries.)
    Reachable {
        /// Property name.
        name: String,
        /// The goal expression.
        goal: Expr,
    },
    /// `G (trigger → F response)` — every trigger is eventually answered.
    Response {
        /// Property name.
        name: String,
        /// The triggering condition.
        trigger: Expr,
        /// The discharging condition.
        response: Expr,
    },
    /// `event` never occurs before `requires_before` has occurred
    /// (correspondence / authentication-precedence properties).
    Precedence {
        /// Property name.
        name: String,
        /// The guarded event.
        event: Expr,
        /// The prerequisite.
        requires_before: Expr,
    },
}

impl Property {
    /// Convenience constructor for [`Property::Invariant`].
    pub fn invariant(name: impl Into<String>, holds: Expr) -> Self {
        Property::Invariant {
            name: name.into(),
            holds,
        }
    }

    /// Convenience constructor for [`Property::Reachable`].
    pub fn reachable(name: impl Into<String>, goal: Expr) -> Self {
        Property::Reachable {
            name: name.into(),
            goal,
        }
    }

    /// Convenience constructor for [`Property::Response`].
    pub fn response(name: impl Into<String>, trigger: Expr, response: Expr) -> Self {
        Property::Response {
            name: name.into(),
            trigger,
            response,
        }
    }

    /// Convenience constructor for [`Property::Precedence`].
    pub fn precedence(name: impl Into<String>, event: Expr, requires_before: Expr) -> Self {
        Property::Precedence {
            name: name.into(),
            event,
            requires_before,
        }
    }

    /// The property's name.
    pub fn name(&self) -> &str {
        match self {
            Property::Invariant { name, .. }
            | Property::Reachable { name, .. }
            | Property::Response { name, .. }
            | Property::Precedence { name, .. } => name,
        }
    }
}

/// Outcome of a check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The property holds on all reachable behaviour.
    Holds,
    /// The property is violated; a counterexample is attached.
    Violated(Counterexample),
    /// (Reachability only) the goal is reachable; a witness is attached.
    Reachable(Counterexample),
    /// (Reachability only) the goal is unreachable.
    Unreachable,
}

impl Verdict {
    /// The attached trace, if any.
    pub fn trace(&self) -> Option<&Counterexample> {
        match self {
            Verdict::Violated(ce) | Verdict::Reachable(ce) => Some(ce),
            _ => None,
        }
    }
}

/// Errors from the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// The model failed validation.
    InvalidModel(Vec<String>),
    /// The reachable product exceeded the state limit.
    StateLimit(usize),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::InvalidModel(problems) => {
                write!(f, "invalid model: {}", problems.join("; "))
            }
            CheckError::StateLimit(n) => write!(f, "state limit of {n} states exceeded"),
        }
    }
}

impl Error for CheckError {}

/// Statistics from exploring a model's reachable state space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreStats {
    /// Number of reachable states.
    pub states: usize,
    /// Number of transitions (fired commands, including stutters).
    pub transitions: usize,
}

/// Per-check telemetry accumulated by the engine. Deterministic for a
/// given model and property: none of the fields depend on scheduling or
/// wall-clock, so a caller summing these across a run gets the same
/// totals at any thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckStats {
    /// Distinct product states interned.
    pub states: u64,
    /// Successor edges generated (fired commands, including stutters).
    pub transitions: u64,
    /// High-water mark of the BFS frontier queue.
    pub peak_queue: u64,
}

impl CheckStats {
    /// Folds another check's stats into this one (`peak_queue` by max,
    /// the monotonic counters by sum).
    pub fn absorb(&mut self, other: CheckStats) {
        self.states += other.states;
        self.transitions += other.transitions;
        self.peak_queue = self.peak_queue.max(other.peak_queue);
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

type Value = u16;
type State = Vec<Value>;

/// Index-resolved expression: variable names and symbolic values are
/// replaced by positions, so evaluation is array indexing with no string
/// hashing on the hot path.
#[derive(Debug, Clone)]
enum CExpr {
    True,
    False,
    Eq(usize, Value),
    Ne(usize, Value),
    In(usize, Vec<Value>),
    And(Vec<CExpr>),
    Or(Vec<CExpr>),
    Not(Box<CExpr>),
}

impl CExpr {
    fn eval(&self, s: &State) -> bool {
        match self {
            CExpr::True => true,
            CExpr::False => false,
            CExpr::Eq(v, x) => s[*v] == *x,
            CExpr::Ne(v, x) => s[*v] != *x,
            CExpr::In(v, xs) => xs.contains(&s[*v]),
            CExpr::And(xs) => xs.iter().all(|x| x.eval(s)),
            CExpr::Or(xs) => xs.iter().any(|x| x.eval(s)),
            CExpr::Not(x) => !x.eval(s),
        }
    }
}

/// A command with indices resolved.
struct CCmd {
    guard: CExpr,
    updates: Vec<(usize, Value)>,
}

struct Compiled<'m> {
    model: &'m Model,
    var_index: HashMap<&'m str, usize>,
    val_index: Vec<HashMap<&'m str, Value>>,
    commands: Vec<CCmd>,
}

impl<'m> Compiled<'m> {
    fn new(model: &'m Model) -> Result<Self, CheckError> {
        let problems = model.validate();
        if !problems.is_empty() {
            return Err(CheckError::InvalidModel(problems));
        }
        let mut var_index = HashMap::new();
        let mut val_index = Vec::new();
        for (i, v) in model.vars().iter().enumerate() {
            var_index.insert(v.name.as_str(), i);
            let mut m = HashMap::new();
            for (j, value) in v.domain.iter().enumerate() {
                m.insert(value.as_str(), j as Value);
            }
            val_index.push(m);
        }
        let mut c = Compiled {
            model,
            var_index,
            val_index,
            commands: Vec::new(),
        };
        c.commands = model
            .commands()
            .iter()
            .map(|cmd| CCmd {
                guard: c.compile(&cmd.guard),
                updates: cmd
                    .updates
                    .iter()
                    .map(|(var, value)| {
                        let vi = c.var_index[var.as_str()];
                        (vi, c.val_index[vi][value.as_str()])
                    })
                    .collect(),
            })
            .collect();
        Ok(c)
    }

    /// Compiles an expression against the declared domains. The model has
    /// already been validated, so lookups cannot fail.
    fn compile(&self, e: &Expr) -> CExpr {
        match e {
            Expr::True => CExpr::True,
            Expr::False => CExpr::False,
            Expr::Eq(v, x) => {
                let vi = self.var_index[v.as_str()];
                CExpr::Eq(vi, self.val_index[vi][x.as_str()])
            }
            Expr::Ne(v, x) => {
                let vi = self.var_index[v.as_str()];
                CExpr::Ne(vi, self.val_index[vi][x.as_str()])
            }
            Expr::In(v, xs) => {
                let vi = self.var_index[v.as_str()];
                CExpr::In(
                    vi,
                    xs.iter().map(|x| self.val_index[vi][x.as_str()]).collect(),
                )
            }
            Expr::And(xs) => CExpr::And(xs.iter().map(|x| self.compile(x)).collect()),
            Expr::Or(xs) => CExpr::Or(xs.iter().map(|x| self.compile(x)).collect()),
            Expr::Not(x) => CExpr::Not(Box::new(self.compile(x))),
            Expr::Implies(a, b) => {
                CExpr::Or(vec![CExpr::Not(Box::new(self.compile(a))), self.compile(b)])
            }
        }
    }

    /// Capacity hint for exploration: the exact product of declared
    /// domain sizes (×2 for the monitor flag) when that is small, else
    /// [`PRESIZE_CAP`], never beyond the state limit.
    fn capacity_hint(&self, limit: usize) -> usize {
        let mut bound = 2usize;
        for v in self.model.vars() {
            bound = bound.saturating_mul(v.domain.len().max(1));
            if bound >= PRESIZE_CAP {
                return PRESIZE_CAP.min(limit);
            }
        }
        bound.min(limit)
    }

    fn initial_states(&self) -> Vec<State> {
        let mut states: Vec<State> = vec![Vec::new()];
        for (i, v) in self.model.vars().iter().enumerate() {
            let mut next = Vec::with_capacity(states.len() * v.init.len());
            for s in &states {
                for init in &v.init {
                    let mut s2 = s.clone();
                    s2.push(self.val_index[i][init.as_str()]);
                    next.push(s2);
                }
            }
            states = next;
        }
        states
    }

    /// Validates that a property expression only references declared
    /// variables and in-domain values; compiles it on success.
    fn compile_checked(&self, e: &Expr) -> Result<CExpr, CheckError> {
        let mut problems = Vec::new();
        self.model.validate_property_expr(e, &mut problems);
        if !problems.is_empty() {
            return Err(CheckError::InvalidModel(problems));
        }
        Ok(self.compile(e))
    }

    /// Enabled commands and their successor states. A deadlocked state
    /// gets a single stutter self-loop (command index `usize::MAX`).
    fn successors(&self, s: &State) -> Vec<(usize, State)> {
        let mut out = Vec::new();
        for (i, cmd) in self.commands.iter().enumerate() {
            if cmd.guard.eval(s) {
                let mut s2 = s.clone();
                for &(vi, value) in &cmd.updates {
                    s2[vi] = value;
                }
                out.push((i, s2));
            }
        }
        if out.is_empty() {
            out.push((usize::MAX, s.clone()));
        }
        out
    }

    fn label_of(&self, cmd: usize) -> &str {
        if cmd == usize::MAX {
            "stutter"
        } else {
            &self.model.commands()[cmd].label
        }
    }

    fn assignment(&self, s: &State) -> BTreeMap<String, String> {
        self.model
            .vars()
            .iter()
            .enumerate()
            .map(|(i, v)| (v.name.clone(), v.domain[s[i] as usize].clone()))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Product-graph exploration
// ---------------------------------------------------------------------------

/// Monitor bit carried in the product state (obligation pending or
/// prerequisite seen). Unused by plain invariant checks.
type Flag = bool;

struct Graph {
    /// Interned (state, flag) pairs.
    nodes: Vec<(State, Flag)>,
    /// Interning table. FxHash: the keys are machine-generated value
    /// vectors, so SipHash's keyed DoS resistance buys nothing and costs
    /// most of the interning time (see [`crate::fxhash`]).
    index: FxHashMap<(State, Flag), u32>,
    /// Parent pointer and incoming command label for trace rebuilding.
    parent: Vec<Option<(u32, usize)>>,
    /// Adjacency (filled only when `record_edges`).
    edges: Vec<Vec<(usize, u32)>>,
}

impl Graph {
    fn with_capacity(cap: usize) -> Self {
        Graph {
            nodes: Vec::with_capacity(cap),
            index: FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default()),
            parent: Vec::with_capacity(cap),
            edges: Vec::with_capacity(cap),
        }
    }

    fn intern(&mut self, node: (State, Flag), parent: Option<(u32, usize)>) -> (u32, bool) {
        if let Some(&id) = self.index.get(&node) {
            return (id, false);
        }
        let id = self.nodes.len() as u32;
        self.index.insert(node.clone(), id);
        self.nodes.push(node);
        self.parent.push(parent);
        self.edges.push(Vec::new());
        (id, true)
    }
}

/// The flag-update function for the product monitor.
type FlagUpdate<'a> = dyn Fn(Flag, &State) -> Flag + 'a;

/// Explores the product graph from the initial states. Exploration
/// telemetry accumulates into `stats` (including on the state-limit
/// error path, so callers see how far the blowup got).
fn explore(
    c: &Compiled<'_>,
    init_flag: &FlagUpdate<'_>,
    step_flag: &FlagUpdate<'_>,
    record_edges: bool,
    limit: usize,
    stats: &mut CheckStats,
) -> Result<Graph, CheckError> {
    let cap = c.capacity_hint(limit);
    let mut g = Graph::with_capacity(cap);
    let mut queue = VecDeque::with_capacity(cap);
    let mut transitions = 0u64;
    let mut peak_queue = 0u64;
    for s in c.initial_states() {
        let flag = init_flag(false, &s);
        let (id, fresh) = g.intern((s, flag), None);
        if fresh {
            queue.push_back(id);
        }
    }
    peak_queue = peak_queue.max(queue.len() as u64);
    while let Some(id) = queue.pop_front() {
        if g.nodes.len() > limit {
            STATES_EXPLORED.fetch_add(g.nodes.len() as u64, Ordering::Relaxed);
            stats.absorb(CheckStats {
                states: g.nodes.len() as u64,
                transitions,
                peak_queue,
            });
            return Err(CheckError::StateLimit(limit));
        }
        let (state, flag) = g.nodes[id as usize].clone();
        for (cmd, succ) in c.successors(&state) {
            transitions += 1;
            let new_flag = step_flag(flag, &succ);
            let (sid, fresh) = g.intern((succ, new_flag), Some((id, cmd)));
            if record_edges {
                g.edges[id as usize].push((cmd, sid));
            }
            if fresh {
                queue.push_back(sid);
            }
        }
        peak_queue = peak_queue.max(queue.len() as u64);
    }
    STATES_EXPLORED.fetch_add(g.nodes.len() as u64, Ordering::Relaxed);
    stats.absorb(CheckStats {
        states: g.nodes.len() as u64,
        transitions,
        peak_queue,
    });
    Ok(g)
}

fn rebuild_path(c: &Compiled<'_>, g: &Graph, target: u32) -> Vec<TraceStep> {
    let mut rev = Vec::new();
    let mut cur = Some(target);
    while let Some(id) = cur {
        let (state, _) = &g.nodes[id as usize];
        let label = match g.parent[id as usize] {
            Some((_, cmd)) => c.label_of(cmd).to_string(),
            None => "init".to_string(),
        };
        rev.push(TraceStep {
            label,
            state: c.assignment(state),
        });
        cur = g.parent[id as usize].map(|(p, _)| p);
    }
    rev.reverse();
    rev
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// Checks a property with the default state limit.
///
/// # Panics
///
/// Panics if the model fails validation or the state space exceeds
/// [`DEFAULT_STATE_LIMIT`] — use [`check_bounded`] to handle those as
/// errors.
pub fn check(model: &Model, property: &Property) -> Verdict {
    check_bounded(model, property, DEFAULT_STATE_LIMIT)
        .unwrap_or_else(|e| panic!("model check failed: {e}"))
}

/// Explores the reachable state space and reports its size.
///
/// # Errors
///
/// Returns [`CheckError`] for invalid models or state-limit blowups.
pub fn explore_stats(model: &Model, limit: usize) -> Result<ExploreStats, CheckError> {
    let c = Compiled::new(model)?;
    let no_flag: &FlagUpdate<'_> = &|_, _| false;
    let mut stats = CheckStats::default();
    let g = explore(&c, no_flag, no_flag, true, limit, &mut stats)?;
    let transitions = g.edges.iter().map(|e| e.len()).sum();
    Ok(ExploreStats {
        states: g.nodes.len(),
        transitions,
    })
}

/// Checks a property with an explicit state limit.
///
/// # Errors
///
/// Returns [`CheckError::InvalidModel`] if the model references
/// undeclared variables or out-of-domain values, and
/// [`CheckError::StateLimit`] if exploration exceeds `limit` states.
pub fn check_bounded(
    model: &Model,
    property: &Property,
    limit: usize,
) -> Result<Verdict, CheckError> {
    let mut stats = CheckStats::default();
    check_bounded_stats(model, property, limit, &mut stats)
}

/// [`check_bounded`] that additionally records the named counters on
/// `collector`: `smv.checks`, `smv.states_explored`, `smv.transitions`,
/// and `smv.peak_queue` (high-water mark). Counters are recorded even
/// when the check errors out, so a state-limit blowup is visible in the
/// telemetry. Returns the verdict together with this check's stats.
///
/// # Errors
///
/// Same as [`check_bounded`].
pub fn check_bounded_traced(
    model: &Model,
    property: &Property,
    limit: usize,
    collector: &Collector,
) -> Result<(Verdict, CheckStats), CheckError> {
    let mut stats = CheckStats::default();
    let result = check_bounded_stats(model, property, limit, &mut stats);
    collector.add("smv.checks", 1);
    collector.add("smv.states_explored", stats.states);
    collector.add("smv.transitions", stats.transitions);
    collector.record_max("smv.peak_queue", stats.peak_queue);
    result.map(|verdict| (verdict, stats))
}

/// Checks a property, accumulating exploration telemetry into `stats`.
/// `stats` grows even on the error path (the state-limit case records
/// how many states were interned before the limit tripped), so CEGAR
/// callers can keep one accumulator across refinement iterations.
///
/// # Errors
///
/// Same as [`check_bounded`].
pub fn check_bounded_stats(
    model: &Model,
    property: &Property,
    limit: usize,
    stats: &mut CheckStats,
) -> Result<Verdict, CheckError> {
    let c = Compiled::new(model)?;
    match property {
        Property::Invariant { holds, .. } => {
            let holds = c.compile_checked(holds)?;
            check_safety(&c, limit, stats, |s, _| !holds.eval(s)).map(|r| match r {
                Some(ce) => Verdict::Violated(ce),
                None => Verdict::Holds,
            })
        }
        Property::Reachable { goal, .. } => {
            let goal = c.compile_checked(goal)?;
            check_safety(&c, limit, stats, |s, _| goal.eval(s)).map(|r| match r {
                Some(ce) => Verdict::Reachable(ce),
                None => Verdict::Unreachable,
            })
        }
        Property::Precedence {
            event,
            requires_before,
            ..
        } => {
            // Flag = "prerequisite has occurred". Violation: event in a
            // state where the (updated) flag is still false.
            let event = c.compile_checked(event)?;
            let before = c.compile_checked(requires_before)?;
            let init_flag: &FlagUpdate<'_> = &|_, s: &State| before.eval(s);
            let step_flag: &FlagUpdate<'_> = &|f, s: &State| f || before.eval(s);
            let g = explore(&c, init_flag, step_flag, false, limit, stats)?;
            for (id, (state, flag)) in g.nodes.iter().enumerate() {
                if !flag && event.eval(state) {
                    let steps = rebuild_path(&c, &g, id as u32);
                    return Ok(Verdict::Violated(Counterexample {
                        steps,
                        lasso_start: None,
                    }));
                }
            }
            Ok(Verdict::Holds)
        }
        Property::Response {
            trigger, response, ..
        } => {
            let trigger = c.compile_checked(trigger)?;
            let response = c.compile_checked(response)?;
            check_response(&c, &trigger, &response, limit, stats)
        }
    }
}

fn check_safety(
    c: &Compiled<'_>,
    limit: usize,
    stats: &mut CheckStats,
    bad: impl Fn(&State, Flag) -> bool,
) -> Result<Option<Counterexample>, CheckError> {
    let no_flag: &FlagUpdate<'_> = &|_, _| false;
    let g = explore(c, no_flag, no_flag, false, limit, stats)?;
    for (id, (state, flag)) in g.nodes.iter().enumerate() {
        if bad(state, *flag) {
            let steps = rebuild_path(c, &g, id as u32);
            return Ok(Some(Counterexample {
                steps,
                lasso_start: None,
            }));
        }
    }
    Ok(None)
}

fn check_response(
    c: &Compiled<'_>,
    trigger: &CExpr,
    response: &CExpr,
    limit: usize,
    stats: &mut CheckStats,
) -> Result<Verdict, CheckError> {
    // Obligation monitor: pending' = (pending ∨ trigger(s')) ∧ ¬response(s').
    let init_flag: &FlagUpdate<'_> = &|_, s: &State| trigger.eval(s) && !response.eval(s);
    let step_flag: &FlagUpdate<'_> = &|f, s: &State| (f || trigger.eval(s)) && !response.eval(s);
    let g = explore(c, init_flag, step_flag, true, limit, stats)?;

    // Restrict to pending nodes and find a fair cycle among them.
    let pending: Vec<bool> = g.nodes.iter().map(|(_, f)| *f).collect();
    let sccs = tarjan_sccs(&g, &pending);
    let fairness: Vec<CExpr> = c.model.fairness().iter().map(|f| c.compile(f)).collect();
    for scc in &sccs {
        if !scc_has_cycle(&g, scc, &pending) {
            continue;
        }
        // Every fairness constraint must be satisfiable inside the SCC.
        let fair_ok = fairness
            .iter()
            .all(|f| scc.iter().any(|&id| f.eval(&g.nodes[id as usize].0)));
        if !fair_ok {
            continue;
        }
        let entry = scc[0];
        let prefix = rebuild_path(c, &g, entry);
        let cycle = build_fair_cycle(c, &g, scc, entry, &fairness);
        let lasso_start = prefix.len() - 1;
        let mut steps = prefix;
        steps.extend(cycle);
        return Ok(Verdict::Violated(Counterexample {
            steps,
            lasso_start: Some(lasso_start),
        }));
    }
    Ok(Verdict::Holds)
}

/// Tarjan SCC over the subgraph induced by `mask` (iterative).
fn tarjan_sccs(g: &Graph, mask: &[bool]) -> Vec<Vec<u32>> {
    let n = g.nodes.len();
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs = Vec::new();

    #[derive(Clone)]
    struct Frame {
        node: u32,
        edge: usize,
    }

    for start in 0..n as u32 {
        if !mask[start as usize] || index[start as usize] != u32::MAX {
            continue;
        }
        let mut call: Vec<Frame> = vec![Frame {
            node: start,
            edge: 0,
        }];
        index[start as usize] = next_index;
        low[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(frame) = call.last_mut() {
            let u = frame.node;
            let edges = &g.edges[u as usize];
            if frame.edge < edges.len() {
                let (_, v) = edges[frame.edge];
                frame.edge += 1;
                if !mask[v as usize] {
                    continue;
                }
                if index[v as usize] == u32::MAX {
                    index[v as usize] = next_index;
                    low[v as usize] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v as usize] = true;
                    call.push(Frame { node: v, edge: 0 });
                } else if on_stack[v as usize] {
                    low[u as usize] = low[u as usize].min(index[v as usize]);
                }
            } else {
                call.pop();
                if let Some(parent) = call.last() {
                    let p = parent.node;
                    low[p as usize] = low[p as usize].min(low[u as usize]);
                }
                if low[u as usize] == index[u as usize] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        scc.push(w);
                        if w == u {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

fn scc_has_cycle(g: &Graph, scc: &[u32], mask: &[bool]) -> bool {
    if scc.len() > 1 {
        return true;
    }
    let u = scc[0];
    g.edges[u as usize]
        .iter()
        .any(|&(_, v)| v == u && mask[u as usize])
}

/// Builds a cycle within the SCC starting and ending at `entry`, visiting
/// a witness state for every fairness constraint.
fn build_fair_cycle(
    c: &Compiled<'_>,
    g: &Graph,
    scc: &[u32],
    entry: u32,
    fairness: &[CExpr],
) -> Vec<TraceStep> {
    use std::collections::HashSet;
    let members: HashSet<u32> = scc.iter().copied().collect();

    // BFS within the SCC from `from` to the first node satisfying `pred`,
    // returning the steps taken (labels + states), excluding `from`.
    let bfs = |from: u32, pred: &dyn Fn(u32) -> bool| -> Vec<(usize, u32)> {
        let mut prev: HashMap<u32, (u32, usize)> = HashMap::new();
        let mut queue = VecDeque::from([from]);
        let mut found = None;
        // Note: `from` itself only counts if it has a self-edge path; we
        // look for the first satisfying node reached by ≥1 edge.
        'outer: while let Some(u) = queue.pop_front() {
            for &(cmd, v) in &g.edges[u as usize] {
                if !members.contains(&v) {
                    continue;
                }
                if let std::collections::hash_map::Entry::Vacant(e) = prev.entry(v) {
                    e.insert((u, cmd));
                    if pred(v) {
                        found = Some(v);
                        break 'outer;
                    }
                    queue.push_back(v);
                }
            }
        }
        let Some(found) = found else {
            return Vec::new();
        };
        // Walk parent pointers back to `from`. The target may equal
        // `from` (a self-loop / cycle back to the start), so the walk is
        // do-while-shaped: always take at least one edge.
        let mut rev = Vec::new();
        let mut cur = found;
        loop {
            let (p, cmd) = prev[&cur];
            rev.push((cmd, cur));
            if p == from || rev.len() > g.nodes.len() {
                break;
            }
            cur = p;
        }
        rev.reverse();
        rev
    };

    let mut pos = entry;
    let mut segments: Vec<(usize, u32)> = Vec::new();
    for f in fairness {
        if f.eval(&g.nodes[pos as usize].0) {
            continue; // already satisfied here
        }
        let seg = bfs(pos, &|id| f.eval(&g.nodes[id as usize].0));
        if let Some(&(_, last)) = seg.last() {
            pos = last;
        }
        segments.extend(seg);
    }
    // Close the loop back to entry.
    if pos != entry || segments.is_empty() {
        let seg = bfs(pos, &|id| id == entry);
        segments.extend(seg);
    }
    segments
        .into_iter()
        .map(|(cmd, id)| TraceStep {
            label: c.label_of(cmd).to_string(),
            state: c.assignment(&g.nodes[id as usize].0),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GuardedCmd;

    /// A 3-state token ring: idle -> req -> done -> idle.
    fn ring(with_drop: bool) -> Model {
        let mut m = Model::new("ring");
        m.declare_var("st", &["idle", "req", "done"], &["idle"]);
        m.add_command(GuardedCmd::new("request", Expr::var_eq("st", "idle")).set("st", "req"));
        m.add_command(GuardedCmd::new("serve", Expr::var_eq("st", "req")).set("st", "done"));
        m.add_command(GuardedCmd::new("reset", Expr::var_eq("st", "done")).set("st", "idle"));
        if with_drop {
            // The adversary may hold the system in `req` forever.
            m.add_command(GuardedCmd::new("adv_drop", Expr::var_eq("st", "req")).set("st", "req"));
        }
        m
    }

    #[test]
    fn invariant_holds() {
        let m = ring(false);
        let v = check(
            &m,
            &Property::invariant("no_ghost", Expr::var_ne("st", "done")),
        );
        assert!(matches!(v, Verdict::Violated(_)), "done is reachable");
        let v2 = check(
            &m,
            &Property::invariant("domain", Expr::var_in("st", ["idle", "req", "done"])),
        );
        assert_eq!(v2, Verdict::Holds);
    }

    #[test]
    fn invariant_counterexample_is_shortest_path() {
        let m = ring(false);
        let Verdict::Violated(ce) = check(
            &m,
            &Property::invariant("never_done", Expr::var_ne("st", "done")),
        ) else {
            panic!("expected violation");
        };
        assert_eq!(ce.command_labels(), vec!["request", "serve"]);
        assert_eq!(ce.final_value("st"), Some("done"));
        assert!(!ce.is_lasso());
    }

    #[test]
    fn reachability() {
        let m = ring(false);
        assert!(matches!(
            check(
                &m,
                &Property::reachable("can_serve", Expr::var_eq("st", "done"))
            ),
            Verdict::Reachable(_)
        ));
        let mut m2 = Model::new("m2");
        m2.declare_var("x", &["a", "b"], &["a"]);
        assert_eq!(
            check(&m2, &Property::reachable("never_b", Expr::var_eq("x", "b"))),
            Verdict::Unreachable
        );
    }

    #[test]
    fn response_holds_without_adversary() {
        let m = ring(false);
        let p = Property::response(
            "served",
            Expr::var_eq("st", "req"),
            Expr::var_eq("st", "done"),
        );
        assert_eq!(check(&m, &p), Verdict::Holds);
    }

    #[test]
    fn response_violated_by_adversary_stall() {
        let m = ring(true);
        let p = Property::response(
            "served",
            Expr::var_eq("st", "req"),
            Expr::var_eq("st", "done"),
        );
        let Verdict::Violated(ce) = check(&m, &p) else {
            panic!("adversary stall must violate response");
        };
        assert!(ce.is_lasso());
        // The loop consists of adv_drop firings.
        let lasso = ce.lasso_start.unwrap();
        assert!(ce.steps[lasso + 1..].iter().all(|s| s.label == "adv_drop"));
    }

    #[test]
    fn fairness_excludes_pure_stall_loops() {
        let mut m = ring(true);
        // Fairness: the service fires infinitely often — excludes the
        // pure-drop loop (no state in the drop cycle satisfies st=done).
        m.add_fairness(Expr::var_eq("st", "done"));
        let p = Property::response(
            "served",
            Expr::var_eq("st", "req"),
            Expr::var_eq("st", "done"),
        );
        assert_eq!(check(&m, &p), Verdict::Holds);
    }

    #[test]
    fn deadlock_stutter_violates_response() {
        let mut m = Model::new("dead");
        m.declare_var("st", &["waiting", "go"], &["waiting"]);
        // No command at all: the system deadlocks in `waiting`.
        let p = Property::response(
            "go_happens",
            Expr::var_eq("st", "waiting"),
            Expr::var_eq("st", "go"),
        );
        let Verdict::Violated(ce) = check(&m, &p) else {
            panic!("deadlock must violate response");
        };
        assert!(ce.steps.iter().any(|s| s.label == "stutter"));
    }

    #[test]
    fn precedence_detects_missing_prerequisite() {
        let mut m = Model::new("prec");
        m.declare_var("st", &["start", "auth", "data"], &["start"]);
        m.add_command(GuardedCmd::new("skip_auth", Expr::var_eq("st", "start")).set("st", "data"));
        m.add_command(GuardedCmd::new("auth", Expr::var_eq("st", "start")).set("st", "auth"));
        m.add_command(GuardedCmd::new("then_data", Expr::var_eq("st", "auth")).set("st", "data"));
        let p = Property::precedence(
            "auth_before_data",
            Expr::var_eq("st", "data"),
            Expr::var_eq("st", "auth"),
        );
        let Verdict::Violated(ce) = check(&m, &p) else {
            panic!("skip path must violate precedence");
        };
        assert_eq!(ce.command_labels(), vec!["skip_auth"]);
    }

    #[test]
    fn precedence_holds_when_ordered() {
        let mut m = Model::new("prec2");
        m.declare_var("st", &["start", "auth", "data"], &["start"]);
        m.add_command(GuardedCmd::new("auth", Expr::var_eq("st", "start")).set("st", "auth"));
        m.add_command(GuardedCmd::new("then_data", Expr::var_eq("st", "auth")).set("st", "data"));
        let p = Property::precedence(
            "auth_before_data",
            Expr::var_eq("st", "data"),
            Expr::var_eq("st", "auth"),
        );
        assert_eq!(check(&m, &p), Verdict::Holds);
    }

    #[test]
    fn multiple_initial_states_explored() {
        let mut m = Model::new("multi");
        m.declare_var("x", &["a", "b", "c"], &["a", "b"]);
        let v = check(&m, &Property::reachable("from_b", Expr::var_eq("x", "b")));
        assert!(matches!(v, Verdict::Reachable(_)));
        assert_eq!(
            check(&m, &Property::reachable("c", Expr::var_eq("x", "c"))),
            Verdict::Unreachable
        );
    }

    #[test]
    fn state_limit_enforced() {
        let mut m = Model::new("big");
        // 8 independent 4-valued variables -> 4^8 = 65536 states.
        let domain = ["0", "1", "2", "3"];
        for i in 0..8 {
            m.declare_var(&format!("v{i}"), &domain, &["0"]);
        }
        for i in 0..8 {
            for (a, b) in [("0", "1"), ("1", "2"), ("2", "3"), ("3", "0")] {
                m.add_command(
                    GuardedCmd::new(format!("v{i}_{a}to{b}"), Expr::var_eq(format!("v{i}"), a))
                        .set(format!("v{i}"), b),
                );
            }
        }
        let err = check_bounded(&m, &Property::invariant("x", Expr::True), 1000).unwrap_err();
        assert!(matches!(err, CheckError::StateLimit(1000)));
        // And with an adequate limit it completes.
        let ok = check_bounded(&m, &Property::invariant("x", Expr::True), 100_000).unwrap();
        assert_eq!(ok, Verdict::Holds);
    }

    #[test]
    fn invalid_model_rejected() {
        let mut m = Model::new("bad");
        m.declare_var("x", &["a"], &["a"]);
        m.add_command(GuardedCmd::new("boom", Expr::var_eq("ghost", "1")));
        let err = check_bounded(&m, &Property::invariant("x", Expr::True), 100).unwrap_err();
        assert!(matches!(err, CheckError::InvalidModel(_)));
    }

    #[test]
    fn telemetry_counts_explored_states() {
        let before = states_explored_total();
        let m = ring(false);
        check(
            &m,
            &Property::invariant("domain", Expr::var_in("st", ["idle", "req", "done"])),
        );
        assert!(states_explored_total() >= before + 3);
    }

    #[test]
    fn explore_stats_counts() {
        let m = ring(false);
        let stats = explore_stats(&m, 1000).unwrap();
        assert_eq!(stats.states, 3);
        assert_eq!(stats.transitions, 3);
    }

    #[test]
    fn check_stats_match_exploration() {
        let m = ring(false);
        let p = Property::invariant("domain", Expr::var_in("st", ["idle", "req", "done"]));
        let mut stats = CheckStats::default();
        let verdict = check_bounded_stats(&m, &p, 1000, &mut stats).unwrap();
        assert_eq!(verdict, Verdict::Holds);
        assert_eq!(stats.states, 3);
        assert_eq!(stats.transitions, 3);
        assert!(stats.peak_queue >= 1);

        // The accumulator folds across checks: a second check doubles the
        // monotonic counters and keeps the peak as a max.
        let first = stats;
        check_bounded_stats(&m, &p, 1000, &mut stats).unwrap();
        assert_eq!(stats.states, first.states * 2);
        assert_eq!(stats.transitions, first.transitions * 2);
        assert_eq!(stats.peak_queue, first.peak_queue);
    }

    #[test]
    fn stats_recorded_even_when_state_limit_trips() {
        let mut m = Model::new("big");
        let domain = ["0", "1", "2", "3"];
        for i in 0..8 {
            m.declare_var(&format!("v{i}"), &domain, &["0"]);
        }
        for i in 0..8 {
            for (a, b) in [("0", "1"), ("1", "2"), ("2", "3"), ("3", "0")] {
                m.add_command(
                    GuardedCmd::new(format!("v{i}_{a}to{b}"), Expr::var_eq(format!("v{i}"), a))
                        .set(format!("v{i}"), b),
                );
            }
        }
        let mut stats = CheckStats::default();
        let err = check_bounded_stats(&m, &Property::invariant("x", Expr::True), 1000, &mut stats)
            .unwrap_err();
        assert!(matches!(err, CheckError::StateLimit(1000)));
        assert!(stats.states > 1000, "partial exploration must be visible");
    }

    #[test]
    fn traced_check_records_collector_counters() {
        use procheck_telemetry::Collector;
        let m = ring(false);
        let p = Property::invariant("domain", Expr::var_in("st", ["idle", "req", "done"]));

        let collector = Collector::enabled();
        let (verdict, stats) = check_bounded_traced(&m, &p, 1000, &collector).unwrap();
        assert_eq!(verdict, Verdict::Holds);
        assert_eq!(collector.counter_value("smv.checks"), 1);
        assert_eq!(collector.counter_value("smv.states_explored"), stats.states);
        assert_eq!(
            collector.counter_value("smv.transitions"),
            stats.transitions
        );
        assert_eq!(collector.counter_value("smv.peak_queue"), stats.peak_queue);

        // A disabled collector yields the identical verdict and stats.
        let (v2, s2) = check_bounded_traced(&m, &p, 1000, &Collector::disabled()).unwrap();
        assert_eq!(v2, verdict);
        assert_eq!(s2, stats);
    }
}
