//! Explicit-state checking engine.
//!
//! States are interned vectors of per-variable value indices. The engine
//! is split into an *explore* phase and an *evaluate* phase:
//!
//! * [`build_reach_graph`] runs one flagless BFS over the model and
//!   produces a [`ReachGraph`] — packed state
//!   arena, CSR successor adjacency, predecessor links, BFS parents.
//! * [`check_on_graph`] answers any [`Property`] as a *query* over that
//!   graph: invariants and reachability are direct scans in BFS order;
//!   precedence and response run a product BFS that carries the one-bit
//!   obligation monitor over the cached adjacency (no guard re-evaluation,
//!   no re-interning of model states). Response violations are reachable
//!   cycles whose states all carry an undischarged obligation and which
//!   satisfy every fairness constraint (`JUSTICE`-style, as in nuXmv).
//!
//! Queries also accept a set of *excluded command labels* so a CEGAR
//! refinement can re-query the same cached graph instead of re-exploring
//! a filtered copy of the model: excluded edges are skipped during the
//! product BFS, and a node whose outgoing commands are all excluded
//! receives the same stutter self-loop a fresh exploration of the
//! filtered model would give it. [`check_bounded_stats`] composes the two
//! phases for one-shot callers and behaves exactly like the historical
//! single-pass checker.

use crate::budget::{BudgetExceeded, BudgetMeter, PROBE_STRIDE};
use crate::expr::Expr;
use crate::fxhash::{FxBuildHasher, FxHashMap};
use crate::model::Model;
use crate::reach::{PackLayout, ReachGraph, StateArena, NO_PARENT, STUTTER_CMD};
use crate::trace::{Counterexample, TraceStep};
use procheck_ident::{CmdId, CmdIdSet, Sym, ValId, VarId};
use procheck_telemetry::Collector;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Default bound on explored product states.
pub const DEFAULT_STATE_LIMIT: usize = 4_000_000;

/// Cap on up-front visited-table/queue allocation. Exact domain-product
/// bounds below this are allocated exactly; anything larger starts here
/// and grows, so a sliced model with a huge *declared* product but a
/// small *reachable* set does not pay for the difference.
const PRESIZE_CAP: usize = 1 << 16;

/// Distinct model states interned by graph builds since process start,
/// across all checks on all threads. Benchmarks read this to report
/// states/second; it is telemetry only and never feeds back into
/// verdicts. Product-monitor states visited by graph *queries* are not
/// counted here — they re-use already-explored states.
static STATES_EXPLORED: AtomicU64 = AtomicU64::new(0);

/// Reads the cumulative states-explored counter.
pub fn states_explored_total() -> u64 {
    STATES_EXPLORED.load(Ordering::Relaxed)
}

/// Guard evaluations skipped since process start because the
/// partial-order commute check proved the parent's guard verdict still
/// applies (the fired command writes no bit the guard reads). Telemetry
/// only — the reduction never changes which edges are generated, so it
/// never feeds back into graphs or verdicts.
static POR_COMMUTE_HITS: AtomicU64 = AtomicU64::new(0);

/// Reads the cumulative partial-order commute-hit counter.
pub fn por_commute_hits_total() -> u64 {
    POR_COMMUTE_HITS.load(Ordering::Relaxed)
}

/// Default for the independence-based partial-order reduction: enabled
/// unless `PROCHECK_NO_POR` is set in the environment (the kill-switch
/// mirroring `PROCHECK_NO_GRAPH_CACHE` / `PROCHECK_NO_SLICE`).
pub fn por_default() -> bool {
    std::env::var_os("PROCHECK_NO_POR").is_none()
}

/// A property to check against a model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Property {
    /// `AG holds` — the expression is true in every reachable state.
    Invariant {
        /// Property name (for reports).
        name: String,
        /// The invariant expression.
        holds: Expr,
    },
    /// `EF goal` — is the goal reachable? (Attack-goal queries.)
    Reachable {
        /// Property name.
        name: String,
        /// The goal expression.
        goal: Expr,
    },
    /// `G (trigger → F response)` — every trigger is eventually answered.
    Response {
        /// Property name.
        name: String,
        /// The triggering condition.
        trigger: Expr,
        /// The discharging condition.
        response: Expr,
    },
    /// `event` never occurs before `requires_before` has occurred
    /// (correspondence / authentication-precedence properties).
    Precedence {
        /// Property name.
        name: String,
        /// The guarded event.
        event: Expr,
        /// The prerequisite.
        requires_before: Expr,
    },
}

impl Property {
    /// Convenience constructor for [`Property::Invariant`].
    pub fn invariant(name: impl Into<String>, holds: Expr) -> Self {
        Property::Invariant {
            name: name.into(),
            holds,
        }
    }

    /// Convenience constructor for [`Property::Reachable`].
    pub fn reachable(name: impl Into<String>, goal: Expr) -> Self {
        Property::Reachable {
            name: name.into(),
            goal,
        }
    }

    /// Convenience constructor for [`Property::Response`].
    pub fn response(name: impl Into<String>, trigger: Expr, response: Expr) -> Self {
        Property::Response {
            name: name.into(),
            trigger,
            response,
        }
    }

    /// Convenience constructor for [`Property::Precedence`].
    pub fn precedence(name: impl Into<String>, event: Expr, requires_before: Expr) -> Self {
        Property::Precedence {
            name: name.into(),
            event,
            requires_before,
        }
    }

    /// The property's name.
    pub fn name(&self) -> &str {
        match self {
            Property::Invariant { name, .. }
            | Property::Reachable { name, .. }
            | Property::Response { name, .. }
            | Property::Precedence { name, .. } => name,
        }
    }
}

/// Outcome of a check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The property holds on all reachable behaviour.
    Holds,
    /// The property is violated; a counterexample is attached.
    Violated(Counterexample),
    /// (Reachability only) the goal is reachable; a witness is attached.
    Reachable(Counterexample),
    /// (Reachability only) the goal is unreachable.
    Unreachable,
}

impl Verdict {
    /// The attached trace, if any.
    pub fn trace(&self) -> Option<&Counterexample> {
        match self {
            Verdict::Violated(ce) | Verdict::Reachable(ce) => Some(ce),
            _ => None,
        }
    }
}

/// Errors from the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// The model failed validation.
    InvalidModel(Vec<String>),
    /// The reachable product exceeded the state limit.
    StateLimit(usize),
    /// A run-level [`crate::budget::Budget`] dimension was exhausted
    /// mid-exploration; partial stats were absorbed before returning.
    Budget(BudgetExceeded),
    /// A panic was caught and isolated to one unit of work (a cache
    /// build or a property check); the payload message is preserved.
    Panic(String),
    /// Two checking backends disagreed on the same property (`Both`
    /// mode), or a symbolic counterexample failed replay validation on
    /// the source model. Never resolved by picking a winner: the
    /// message names both verdicts and the run fails loudly.
    BackendDivergence(String),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::InvalidModel(problems) => {
                write!(f, "invalid model: {}", problems.join("; "))
            }
            CheckError::StateLimit(n) => write!(f, "state limit of {n} states exceeded"),
            CheckError::Budget(e) => write!(f, "analysis budget exhausted: {e}"),
            CheckError::Panic(msg) => write!(f, "isolated panic: {msg}"),
            CheckError::BackendDivergence(msg) => write!(f, "backend divergence: {msg}"),
        }
    }
}

impl Error for CheckError {}

/// Statistics from exploring a model's reachable state space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreStats {
    /// Number of reachable states.
    pub states: usize,
    /// Number of transitions (fired commands, including stutters).
    pub transitions: usize,
}

/// Per-check telemetry accumulated by the engine. Deterministic for a
/// given model and property: none of the fields depend on scheduling or
/// wall-clock, so a caller summing these across a run gets the same
/// totals at any thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckStats {
    /// Distinct product states interned.
    pub states: u64,
    /// Successor edges generated (fired commands, including stutters).
    pub transitions: u64,
    /// High-water mark of the BFS frontier queue.
    pub peak_queue: u64,
}

impl CheckStats {
    /// Folds another check's stats into this one (`peak_queue` by max,
    /// the monotonic counters by sum).
    pub fn absorb(&mut self, other: CheckStats) {
        self.states += other.states;
        self.transitions += other.transitions;
        self.peak_queue = self.peak_queue.max(other.peak_queue);
    }
}

/// Telemetry from answering a property as a query over a cached
/// [`ReachGraph`]. Deterministic for a given
/// graph, property, and exclusion set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryStats {
    /// Cached graph nodes consulted instead of being re-explored
    /// (scanned states plus product-monitor visits).
    pub nodes_reused: u64,
    /// Product-monitor states interned by the query (0 for direct
    /// scans; these are the states a non-cached checker would have
    /// explored from scratch).
    pub product_states: u64,
    /// Edges traversed while re-querying the graph.
    pub transitions: u64,
    /// High-water mark of the query's product BFS frontier.
    pub peak_queue: u64,
}

impl QueryStats {
    /// Folds another query's stats into this one (`peak_queue` by max,
    /// the monotonic counters by sum).
    pub fn absorb(&mut self, other: QueryStats) {
        self.nodes_reused += other.nodes_reused;
        self.product_states += other.product_states;
        self.transitions += other.transitions;
        self.peak_queue = self.peak_queue.max(other.peak_queue);
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

type Value = crate::reach::Value;
type State = Vec<Value>;

/// Index-resolved expression: variable names and symbolic values are
/// replaced by typed dense indices ([`VarId`], [`ValId`]), so evaluation
/// is array indexing with no string hashing on the hot path. Public so
/// alternative backends (the BMC engine in `procheck-symbolic`) can
/// translate the same compiled form instead of re-resolving names.
#[derive(Debug, Clone)]
pub enum CExpr {
    True,
    False,
    Eq(VarId, ValId),
    Ne(VarId, ValId),
    In(VarId, Vec<ValId>),
    And(Vec<CExpr>),
    Or(Vec<CExpr>),
    Not(Box<CExpr>),
}

impl CExpr {
    /// Evaluates the expression in a dense state vector.
    pub fn eval(&self, s: &[Value]) -> bool {
        match self {
            CExpr::True => true,
            CExpr::False => false,
            CExpr::Eq(v, x) => s[v.index()] == x.0,
            CExpr::Ne(v, x) => s[v.index()] != x.0,
            CExpr::In(v, xs) => xs.contains(&ValId(s[v.index()])),
            CExpr::And(xs) => xs.iter().all(|x| x.eval(s)),
            CExpr::Or(xs) => xs.iter().any(|x| x.eval(s)),
            CExpr::Not(x) => !x.eval(s),
        }
    }
}

/// A command with indices resolved.
#[derive(Debug)]
pub struct CCmd {
    /// The command's label (unique in generated threat models).
    pub label: Sym,
    /// The compiled guard expression.
    pub guard: CExpr,
    /// Variable assignments applied when the command fires; variables
    /// not mentioned keep their value.
    pub updates: Vec<(VarId, ValId)>,
}

/// A compiled variable: interned name and domain for trace resolution,
/// initial values as dense indices for exploration.
#[derive(Debug)]
pub struct CVar {
    /// The variable's interned name.
    pub name: Sym,
    /// The declared domain, in [`ValId`] order.
    pub domain: Vec<Sym>,
    /// The initial values (one state per combination across variables).
    pub init: Vec<ValId>,
}

/// A model with every name resolved to a dense index, built **once** per
/// model and reused by every query and CEGAR iteration on it. Owns its
/// tables (no borrow of the source [`Model`]), so caches can hold it next
/// to the model and the reachability graph.
#[derive(Debug)]
pub struct CompiledModel {
    pub(crate) vars: Vec<CVar>,
    pub(crate) var_index: FxHashMap<Sym, VarId>,
    pub(crate) val_index: Vec<FxHashMap<Sym, ValId>>,
    pub(crate) commands: Vec<CCmd>,
    pub(crate) fairness: Vec<CExpr>,
}

/// A property with its expressions compiled against one
/// [`CompiledModel`]'s tables. Compile once, query any number of times —
/// including across CEGAR iterations — with zero further string
/// resolution.
#[derive(Debug)]
pub struct CompiledProperty {
    pub(crate) kind: CProp,
}

impl CompiledProperty {
    /// The compiled property kind, for backends translating the same
    /// compiled form the explicit engine queries.
    pub fn kind(&self) -> &CProp {
        &self.kind
    }
}

/// The compiled shape of a [`Property`]: the same four temporal
/// patterns, with every expression index-resolved.
#[derive(Debug)]
pub enum CProp {
    Invariant {
        holds: CExpr,
    },
    Reachable {
        goal: CExpr,
    },
    Response {
        trigger: CExpr,
        response: CExpr,
    },
    Precedence {
        event: CExpr,
        requires_before: CExpr,
    },
}

impl CompiledModel {
    /// Validates and compiles a model.
    ///
    /// # Errors
    ///
    /// Returns [`CheckError::InvalidModel`] with the model's validation
    /// problems (same strings, same order as [`Model::validate`]).
    pub fn new(model: &Model) -> Result<Self, CheckError> {
        let problems = model.validate();
        if !problems.is_empty() {
            return Err(CheckError::InvalidModel(problems));
        }
        let mut var_index =
            FxHashMap::with_capacity_and_hasher(model.vars().len(), FxBuildHasher::default());
        let mut val_index = Vec::with_capacity(model.vars().len());
        let mut vars = Vec::with_capacity(model.vars().len());
        for (i, v) in model.vars().iter().enumerate() {
            var_index.insert(v.name, VarId::new(i));
            let mut m =
                FxHashMap::with_capacity_and_hasher(v.domain.len(), FxBuildHasher::default());
            for (j, &value) in v.domain.iter().enumerate() {
                m.insert(value, ValId::new(j));
            }
            vars.push(CVar {
                name: v.name,
                domain: v.domain.clone(),
                init: v.init.iter().map(|s| m[s]).collect(),
            });
            val_index.push(m);
        }
        let mut c = CompiledModel {
            vars,
            var_index,
            val_index,
            commands: Vec::new(),
            fairness: Vec::new(),
        };
        c.commands = model
            .commands()
            .iter()
            .map(|cmd| CCmd {
                label: cmd.label,
                guard: c.compile(&cmd.guard),
                updates: cmd
                    .updates
                    .iter()
                    .map(|(var, value)| {
                        let vi = c.var_index[var];
                        (vi, c.val_index[vi.index()][value])
                    })
                    .collect(),
            })
            .collect();
        c.fairness = model.fairness().iter().map(|f| c.compile(f)).collect();
        Ok(c)
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// The compiled variables, in [`VarId`] order.
    pub fn vars(&self) -> &[CVar] {
        &self.vars
    }

    /// The compiled commands, in [`CmdId`] order.
    pub fn commands(&self) -> &[CCmd] {
        &self.commands
    }

    /// The compiled fairness constraints (`JUSTICE`-style: each must
    /// hold infinitely often along any counted infinite behaviour).
    pub fn fairness_exprs(&self) -> &[CExpr] {
        &self.fairness
    }

    /// Number of commands; [`CmdId`]s index `0..command_count()` in the
    /// source model's declaration order.
    pub fn command_count(&self) -> usize {
        self.commands.len()
    }

    /// The label of a command.
    pub fn command_label(&self, id: CmdId) -> Sym {
        self.commands[id.index()].label
    }

    /// All command ids carrying the given label (labels are unique in
    /// generated threat models, but the engine does not assume it).
    pub fn commands_labeled(&self, label: Sym) -> impl Iterator<Item = CmdId> + '_ {
        self.commands
            .iter()
            .enumerate()
            .filter(move |(_, c)| c.label == label)
            .map(|(i, _)| CmdId::new(i))
    }

    /// An empty exclusion mask sized for this model's commands.
    pub fn exclusion_set(&self) -> CmdIdSet {
        CmdIdSet::with_capacity(self.commands.len())
    }

    /// Validates a property's expressions against the compiled domains
    /// and compiles them for querying.
    ///
    /// # Errors
    ///
    /// Returns [`CheckError::InvalidModel`] listing the property's
    /// vocabulary problems (same strings and order as the name-based
    /// checker produced).
    pub fn compile_property(&self, property: &Property) -> Result<CompiledProperty, CheckError> {
        let kind = match property {
            Property::Invariant { holds, .. } => CProp::Invariant {
                holds: self.compile_checked(holds)?,
            },
            Property::Reachable { goal, .. } => CProp::Reachable {
                goal: self.compile_checked(goal)?,
            },
            Property::Response {
                trigger, response, ..
            } => CProp::Response {
                trigger: self.compile_checked(trigger)?,
                response: self.compile_checked(response)?,
            },
            Property::Precedence {
                event,
                requires_before,
                ..
            } => CProp::Precedence {
                event: self.compile_checked(event)?,
                requires_before: self.compile_checked(requires_before)?,
            },
        };
        Ok(CompiledProperty { kind })
    }

    /// Compiles an expression against the declared domains. The model has
    /// already been validated, so lookups cannot fail.
    fn compile(&self, e: &Expr) -> CExpr {
        match e {
            Expr::True => CExpr::True,
            Expr::False => CExpr::False,
            Expr::Eq(v, x) => {
                let vi = self.var_index[v];
                CExpr::Eq(vi, self.val_index[vi.index()][x])
            }
            Expr::Ne(v, x) => {
                let vi = self.var_index[v];
                CExpr::Ne(vi, self.val_index[vi.index()][x])
            }
            Expr::In(v, xs) => {
                let vi = self.var_index[v];
                CExpr::In(
                    vi,
                    xs.iter().map(|x| self.val_index[vi.index()][x]).collect(),
                )
            }
            Expr::And(xs) => CExpr::And(xs.iter().map(|x| self.compile(x)).collect()),
            Expr::Or(xs) => CExpr::Or(xs.iter().map(|x| self.compile(x)).collect()),
            Expr::Not(x) => CExpr::Not(Box::new(self.compile(x))),
            Expr::Implies(a, b) => {
                CExpr::Or(vec![CExpr::Not(Box::new(self.compile(a))), self.compile(b)])
            }
        }
    }

    /// Capacity hint for exploration: the exact product of declared
    /// domain sizes (×2 for the monitor flag) when that is small, else
    /// [`PRESIZE_CAP`], never beyond the state limit.
    fn capacity_hint(&self, limit: usize) -> usize {
        let mut bound = 2usize;
        for v in &self.vars {
            bound = bound.saturating_mul(v.domain.len().max(1));
            if bound >= PRESIZE_CAP {
                return PRESIZE_CAP.min(limit);
            }
        }
        bound.min(limit)
    }

    /// Every initial state (the cross-product of per-variable initial
    /// value lists), as dense value vectors in exploration order.
    pub fn initial_states(&self) -> Vec<State> {
        let mut states: Vec<State> = vec![Vec::new()];
        for v in &self.vars {
            let mut next = Vec::with_capacity(states.len() * v.init.len());
            for s in &states {
                for init in &v.init {
                    let mut s2 = s.clone();
                    s2.push(init.0);
                    next.push(s2);
                }
            }
            states = next;
        }
        states
    }

    /// Validates that a property expression only references declared
    /// variables and in-domain values; compiles it on success. The
    /// problem strings match [`Model::validate_property_expr`] exactly.
    fn compile_checked(&self, e: &Expr) -> Result<CExpr, CheckError> {
        let mut problems = Vec::new();
        self.validate_expr(e, &mut problems);
        if !problems.is_empty() {
            return Err(CheckError::InvalidModel(problems));
        }
        Ok(self.compile(e))
    }

    fn validate_expr(&self, e: &Expr, problems: &mut Vec<String>) {
        let ctx = "property";
        match e {
            Expr::True | Expr::False => {}
            Expr::Eq(v, x) | Expr::Ne(v, x) => match self.var_index.get(v) {
                None => problems.push(format!("`{ctx}` references undeclared `{v}`")),
                Some(vi) if !self.val_index[vi.index()].contains_key(x) => {
                    problems.push(format!("`{ctx}` compares `{v}` to out-of-domain `{x}`"))
                }
                _ => {}
            },
            Expr::In(v, xs) => match self.var_index.get(v) {
                None => problems.push(format!("`{ctx}` references undeclared `{v}`")),
                Some(vi) => {
                    for x in xs {
                        if !self.val_index[vi.index()].contains_key(x) {
                            problems
                                .push(format!("`{ctx}` tests `{v}` against out-of-domain `{x}`"));
                        }
                    }
                }
            },
            Expr::And(xs) | Expr::Or(xs) => {
                for x in xs {
                    self.validate_expr(x, problems);
                }
            }
            Expr::Not(x) => self.validate_expr(x, problems),
            Expr::Implies(a, b) => {
                self.validate_expr(a, problems);
                self.validate_expr(b, problems);
            }
        }
    }

    /// The trace label for a fired command id (`STUTTER_CMD` →
    /// `"stutter"`).
    pub fn label_of(&self, cmd: u32) -> &'static str {
        if cmd == STUTTER_CMD {
            "stutter"
        } else {
            self.commands[cmd as usize].label.as_str()
        }
    }

    /// Renders a dense state vector as the name→value assignment traces
    /// carry.
    pub fn assignment(&self, s: &[Value]) -> BTreeMap<String, String> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, v)| {
                (
                    v.name.as_str().to_string(),
                    v.domain[s[i] as usize].as_str().to_string(),
                )
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Explore phase: building the reachable graph
// ---------------------------------------------------------------------------

/// Interning state-arena builder for the wide (unpackable) fallback.
/// The index table exists only during the BFS; the finished
/// [`ReachGraph`] keeps just the arena. Packed models use
/// [`PackedFrontier`] instead.
struct ArenaBuilder {
    arena: StateArena,
    wide_index: FxHashMap<Box<[Value]>, u32>,
    parent_node: Vec<u32>,
    parent_cmd: Vec<u32>,
}

impl ArenaBuilder {
    fn len(&self) -> usize {
        self.parent_node.len()
    }

    /// Interns a state, recording BFS parent info on first sight. The
    /// state is *borrowed*: it is copied only when actually fresh, so
    /// the BFS hot loop never clones per pop or per duplicate successor.
    fn intern(&mut self, s: &[Value], parent: (u32, u32)) -> (u32, bool) {
        match &mut self.arena {
            StateArena::Packed { .. } => unreachable!("packed models use PackedFrontier"),
            StateArena::Wide { values, .. } => {
                if let Some(&id) = self.wide_index.get(s) {
                    return (id, false);
                }
                let id = self.wide_index.len() as u32;
                values.extend_from_slice(s);
                self.wide_index.insert(s.to_vec().into_boxed_slice(), id);
                self.parent_node.push(parent.0);
                self.parent_cmd.push(parent.1);
                (id, true)
            }
        }
    }
}

/// What one parallel-exploration worker produced: its claimed chunks'
/// outputs, or the panic payload to re-raise on the exploring thread.
type WorkerOutcome = Result<Vec<(usize, ChunkOut)>, Box<dyn std::any::Any + Send>>;

/// Explores the model's reachable state space once and returns it as a
/// [`ReachGraph`] ready for any number of property queries.
///
/// # Errors
///
/// Returns [`CheckError`] for invalid models or state-limit blowups.
pub fn build_reach_graph(model: &Model, limit: usize) -> Result<ReachGraph, CheckError> {
    let mut stats = CheckStats::default();
    build_reach_graph_stats(model, limit, &mut stats)
}

/// [`build_reach_graph`] that additionally accumulates exploration
/// telemetry into `stats` — including on the state-limit error path, so
/// callers see how far the blowup got.
///
/// # Errors
///
/// Same as [`build_reach_graph`].
pub fn build_reach_graph_stats(
    model: &Model,
    limit: usize,
    stats: &mut CheckStats,
) -> Result<ReachGraph, CheckError> {
    let c = CompiledModel::new(model)?;
    explore_graph(
        &c,
        limit,
        &BudgetMeter::unlimited(),
        stats,
        1,
        por_default(),
    )
}

/// [`build_reach_graph_stats`] over an already-compiled model — the
/// cache's build path, which compiles each model exactly once and then
/// explores and queries without touching a string table.
///
/// # Errors
///
/// Returns [`CheckError::StateLimit`] if exploration exceeds `limit`.
pub fn build_reach_graph_compiled(
    model: &CompiledModel,
    limit: usize,
    stats: &mut CheckStats,
) -> Result<ReachGraph, CheckError> {
    explore_graph(
        model,
        limit,
        &BudgetMeter::unlimited(),
        stats,
        1,
        por_default(),
    )
}

/// [`build_reach_graph_compiled`] under a live [`BudgetMeter`]: freshly
/// interned states are charged against the run-wide budget every
/// [`PROBE_STRIDE`] pops (serial path) or at each level barrier
/// (parallel path), and exhaustion aborts this build (with partial
/// stats absorbed, like the state-limit path) without touching any other
/// work sharing the meter.
///
/// `explore_threads` is the worker count for the level-synchronized
/// parallel frontier; `1` (or a wide, unpackable arena) keeps the serial
/// path. Any worker count produces a byte-identical [`ReachGraph`] on
/// clean runs — node ids, BFS parents, and CSR layout all follow the
/// canonical `(parent pop order, command index)` intern order.
///
/// # Errors
///
/// [`CheckError::StateLimit`] past `limit`; [`CheckError::Budget`] when
/// the meter trips.
pub fn build_reach_graph_budgeted(
    model: &CompiledModel,
    limit: usize,
    meter: &BudgetMeter,
    stats: &mut CheckStats,
    explore_threads: usize,
) -> Result<ReachGraph, CheckError> {
    build_reach_graph_budgeted_opts(model, limit, meter, stats, explore_threads, por_default())
}

/// [`build_reach_graph_budgeted`] with the partial-order reduction
/// controlled explicitly instead of by [`por_default`]. The reduction is
/// graph-preserving: it only skips *re-evaluating* guards whose verdict
/// provably carried over from the BFS parent (the fired command writes
/// no packed-key bit the guard reads), so node ids, edges, parents, and
/// stats are byte-identical with `por` on or off — only the
/// [`por_commute_hits_total`] telemetry counter differs.
///
/// # Errors
///
/// Same as [`build_reach_graph_budgeted`].
pub fn build_reach_graph_budgeted_opts(
    model: &CompiledModel,
    limit: usize,
    meter: &BudgetMeter,
    stats: &mut CheckStats,
    explore_threads: usize,
    por: bool,
) -> Result<ReachGraph, CheckError> {
    explore_graph(model, limit, meter, stats, explore_threads, por)
}

/// A guard lowered against a [`PackLayout`]: every atom carries its
/// variable's field mask precomputed, so evaluation on the raw packed
/// key is an AND plus a compare — no per-atom layout lookup, no unpack
/// into a scratch vector. Built once per graph build by
/// [`lower_packed_cmds`], then evaluated millions of times.
enum PGuard {
    True,
    False,
    /// `key & mask == bits` — equality against one variable's field.
    EqBits {
        mask: u64,
        bits: u64,
    },
    /// `key & mask != bits`.
    NeBits {
        mask: u64,
        bits: u64,
    },
    /// Membership via a value bitset (fields up to 6 bits wide, so every
    /// domain index fits a `u64` bitset).
    InSmall {
        shift: u8,
        mask: u64,
        allowed: u64,
    },
    /// Membership fallback for fields wider than 6 bits.
    InWide {
        shift: u8,
        mask: u64,
        values: Vec<Value>,
    },
    And(Vec<PGuard>),
    Or(Vec<PGuard>),
    Not(Box<PGuard>),
}

impl PGuard {
    fn eval(&self, key: u64) -> bool {
        match self {
            PGuard::True => true,
            PGuard::False => false,
            PGuard::EqBits { mask, bits } => key & mask == *bits,
            PGuard::NeBits { mask, bits } => key & mask != *bits,
            PGuard::InSmall {
                shift,
                mask,
                allowed,
            } => (allowed >> ((key >> shift) & mask)) & 1 != 0,
            PGuard::InWide {
                shift,
                mask,
                values,
            } => values.contains(&(((key >> shift) & mask) as Value)),
            PGuard::And(xs) => xs.iter().all(|x| x.eval(key)),
            PGuard::Or(xs) => xs.iter().any(|x| x.eval(key)),
            PGuard::Not(x) => !x.eval(key),
        }
    }
}

fn lower_guard(e: &CExpr, l: &PackLayout) -> PGuard {
    match e {
        CExpr::True => PGuard::True,
        CExpr::False => PGuard::False,
        CExpr::Eq(v, x) => {
            let (shift, width) = l.field(v.index());
            let mask = if width == 0 {
                0
            } else {
                (u64::MAX >> (64 - u32::from(width))) << shift
            };
            let bits = u64::from(x.0) << shift;
            if bits & !mask != 0 {
                // The value does not fit the field: unrepresentable, so
                // no packed state can ever equal it.
                PGuard::False
            } else {
                PGuard::EqBits { mask, bits }
            }
        }
        CExpr::Ne(v, x) => match lower_guard(&CExpr::Eq(*v, *x), l) {
            PGuard::False => PGuard::True,
            PGuard::EqBits { mask, bits } => PGuard::NeBits { mask, bits },
            _ => unreachable!("Eq lowers to False or EqBits"),
        },
        CExpr::In(v, xs) => {
            let (shift, width) = l.field(v.index());
            let mask = if width == 0 {
                0
            } else {
                u64::MAX >> (64 - u32::from(width))
            };
            if width <= 6 {
                let mut allowed = 0u64;
                for x in xs {
                    if u64::from(x.0) <= mask {
                        allowed |= 1u64 << x.0;
                    }
                }
                PGuard::InSmall {
                    shift,
                    mask,
                    allowed,
                }
            } else {
                PGuard::InWide {
                    shift,
                    mask,
                    values: xs.iter().map(|x| x.0).collect(),
                }
            }
        }
        CExpr::And(xs) => PGuard::And(xs.iter().map(|x| lower_guard(x, l)).collect()),
        CExpr::Or(xs) => PGuard::Or(xs.iter().map(|x| lower_guard(x, l)).collect()),
        CExpr::Not(x) => PGuard::Not(Box::new(lower_guard(x, l))),
    }
}

/// A command lowered against a [`PackLayout`]: guard evaluated directly
/// on the packed key, updates applied as one `(key & clear) | set`.
struct PackedCmd {
    guard: PGuard,
    clear: u64,
    set: u64,
}

/// Independence tables for the guard-inheritance partial-order
/// reduction. For commands `a` (fired) and `b` (any guard), bit `b` of
/// `preserves[a]` is set when `b`'s guard reads no packed-key bit that
/// `a` writes — adversary drop/inject steps on the two unidirectional
/// channels are the motivating case: they commute, so after firing one,
/// the other's guard verdict is inherited from the BFS parent instead of
/// being re-evaluated. The reduction is *graph-preserving*: inherited
/// bits equal what evaluation would produce, so the explored graph is
/// byte-identical with the tables on or off.
struct PorTables {
    /// Per fired command: bitset (over command indices) of guards whose
    /// verdict survives the firing unchanged.
    preserves: Vec<GuardWord>,
}

/// One 64-bit word per 64 commands in a guard-verdict bitset. POR
/// supports models up to `64 * GW_WORDS` commands; two words cover the
/// registry's threat-composed models (which top out around 115
/// commands) without widening the hot per-pop state for small models
/// beyond a pair of registers.
const GW_WORDS: usize = 2;

/// Guard-verdict bitset: bit `i % 64` of word `i / 64` is command `i`.
type GuardWord = [u64; GW_WORDS];

/// `(parent & kept) | eval` — inherited verdicts merged with the
/// freshly evaluated remainder.
fn gw_inherit(parent: GuardWord, kept: GuardWord, eval: GuardWord) -> GuardWord {
    std::array::from_fn(|w| (parent[w] & kept[w]) | eval[w])
}

/// `a & !b` per word.
fn gw_andnot(a: GuardWord, b: GuardWord) -> GuardWord {
    std::array::from_fn(|w| a[w] & !b[w])
}

/// Population count across the words.
fn gw_count_ones(a: GuardWord) -> u64 {
    a.iter().map(|w| u64::from(w.count_ones())).sum()
}

/// Union of the packed-key field masks a compiled guard reads. Singleton
/// (zero-width) fields contribute nothing: their value is constant, so
/// no command can change what the guard sees.
fn guard_read_mask(e: &CExpr, l: &PackLayout) -> u64 {
    match e {
        CExpr::True | CExpr::False => 0,
        CExpr::Eq(v, _) | CExpr::Ne(v, _) | CExpr::In(v, _) => l.field_mask(v.index()),
        CExpr::And(xs) | CExpr::Or(xs) => xs.iter().fold(0, |m, x| m | guard_read_mask(x, l)),
        CExpr::Not(x) => guard_read_mask(x, l),
    }
}

/// Builds the commute tables, or `None` when the reduction is disabled
/// or the model has more than `64 * GW_WORDS` commands (the bitset
/// capacity).
fn por_tables(
    c: &CompiledModel,
    layout: &PackLayout,
    cmds: &[PackedCmd],
    por: bool,
) -> Option<PorTables> {
    if !por || cmds.len() > 64 * GW_WORDS {
        return None;
    }
    let reads: Vec<u64> = c
        .commands
        .iter()
        .map(|cmd| guard_read_mask(&cmd.guard, layout))
        .collect();
    let preserves = cmds
        .iter()
        .map(|a| {
            // `clear` zeroes exactly the fields `a` updates (and `set`
            // bits live inside them), so the write set is its complement.
            let write = !a.clear;
            let mut word = [0u64; GW_WORDS];
            for (b, &read) in reads.iter().enumerate() {
                if read & write == 0 {
                    word[b / 64] |= 1u64 << (b % 64);
                }
            }
            word
        })
        .collect();
    Some(PorTables { preserves })
}

/// Evaluates the guards selected by `eval_mask` against a packed key,
/// returning their verdicts as a bitset (ascending command order, same
/// as the serial enumerate loop).
fn eval_guard_word(cmds: &[PackedCmd], key: u64, eval_mask: GuardWord) -> GuardWord {
    let mut word = [0u64; GW_WORDS];
    for (w, mut m) in eval_mask.into_iter().enumerate() {
        while m != 0 {
            let i = w * 64 + m.trailing_zeros() as usize;
            m &= m - 1;
            if cmds[i].guard.eval(key) {
                word[w] |= 1u64 << (i % 64);
            }
        }
    }
    word
}

/// Bitset with one bit per command (all guards "must evaluate").
/// Clamped to the bitset capacity: over-wide models never build POR
/// tables, so the excess commands are only ever enumerated directly.
fn all_cmds_mask(n: usize) -> GuardWord {
    let n = n.min(64 * GW_WORDS);
    std::array::from_fn(|w| {
        let width = n.saturating_sub(w * 64).min(64);
        if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    })
}

fn lower_packed_cmds(c: &CompiledModel, layout: &PackLayout) -> Vec<PackedCmd> {
    c.commands
        .iter()
        .map(|cmd| {
            let updates: Vec<(usize, Value)> = cmd
                .updates
                .iter()
                .map(|&(vi, value)| (vi.index(), value.0))
                .collect();
            let (clear, set) = layout.update_masks(&updates);
            PackedCmd {
                guard: lower_guard(&cmd.guard, layout),
                clear,
                set,
            }
        })
        .collect()
}

/// Interner for the packed exploration paths: one `u64` key per state,
/// BFS parent info recorded on first sight.
struct PackedFrontier {
    layout: PackLayout,
    keys: Vec<u64>,
    index: FxHashMap<u64, u32>,
    parent_node: Vec<u32>,
    parent_cmd: Vec<u32>,
}

impl PackedFrontier {
    fn with_capacity(layout: PackLayout, cap: usize) -> Self {
        PackedFrontier {
            layout,
            keys: Vec::with_capacity(cap),
            index: FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default()),
            parent_node: Vec::with_capacity(cap),
            parent_cmd: Vec::with_capacity(cap),
        }
    }

    fn intern_key(&mut self, key: u64, parent: (u32, u32)) -> u32 {
        match self.index.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let id = self.keys.len() as u32;
                self.keys.push(key);
                e.insert(id);
                self.parent_node.push(parent.0);
                self.parent_cmd.push(parent.1);
                id
            }
        }
    }
}

/// Folds partial exploration cost into `stats` and the process counter
/// before an aborting error is returned.
fn abort_partial(
    stats: &mut CheckStats,
    states: u64,
    transitions: u64,
    peak_queue: u64,
    err: CheckError,
) -> CheckError {
    STATES_EXPLORED.fetch_add(states, Ordering::Relaxed);
    stats.absorb(CheckStats {
        states,
        transitions,
        peak_queue,
    });
    err
}

fn explore_graph(
    c: &CompiledModel,
    limit: usize,
    meter: &BudgetMeter,
    stats: &mut CheckStats,
    explore_threads: usize,
    por: bool,
) -> Result<ReachGraph, CheckError> {
    let domain_sizes: Vec<usize> = c.vars.iter().map(|v| v.domain.len()).collect();
    match PackLayout::for_domains(&domain_sizes) {
        Some(layout) if explore_threads > 1 => {
            explore_packed_parallel(c, layout, limit, meter, stats, explore_threads, por)
        }
        Some(layout) => explore_packed_serial(c, layout, limit, meter, stats, por),
        // The wide value-vector fallback keeps the serial path: models
        // too wide to pack are rare and small in this workload. (No POR
        // either: the commute check works on packed-key bit masks.)
        None => explore_wide(c, limit, meter, stats),
    }
}

/// Serial BFS over the wide (unpackable) arena — the original generic
/// exploration loop, kept verbatim for models whose domain product does
/// not fit 64 bits.
fn explore_wide(
    c: &CompiledModel,
    limit: usize,
    meter: &BudgetMeter,
    stats: &mut CheckStats,
) -> Result<ReachGraph, CheckError> {
    let num_vars = c.num_vars();
    let cap = c.capacity_hint(limit);

    let mut b = ArenaBuilder {
        arena: StateArena::Wide {
            num_vars,
            values: Vec::new(),
        },
        wide_index: FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default()),
        parent_node: Vec::with_capacity(cap),
        parent_cmd: Vec::with_capacity(cap),
    };

    for s in c.initial_states() {
        b.intern(&s, (NO_PARENT, NO_PARENT));
    }
    let init_count = b.len() as u32;

    let mut succ_off: Vec<u32> = Vec::with_capacity(cap + 1);
    succ_off.push(0);
    let mut succ_cmd: Vec<u32> = Vec::new();
    let mut succ_node: Vec<u32> = Vec::new();
    let mut transitions = 0u64;
    let mut peak_queue = init_count as u64;
    let mut cur: State = vec![0; num_vars];
    let mut scratch: State = vec![0; num_vars];

    // BFS with an implicit queue: pop order equals intern order, so the
    // frontier is just the ids in `next..len` and the CSR offsets can be
    // sealed as each node is popped.
    let budgeted = meter.is_limited();
    let mut charged: usize = 0;
    let mut next: usize = 0;
    let mut level_end: usize = 0;
    let mut levels: u32 = 0;
    let mut peak_level: u64 = 0;
    while next < b.len() {
        if next == level_end {
            level_end = b.len();
            levels += 1;
            peak_level = peak_level.max((level_end - next) as u64);
        }
        if b.len() > limit {
            return Err(abort_partial(
                stats,
                b.len() as u64,
                transitions,
                peak_queue,
                CheckError::StateLimit(limit),
            ));
        }
        if budgeted && next.is_multiple_of(PROBE_STRIDE) {
            let fresh = (b.len() - charged) as u64;
            charged = b.len();
            if let Err(e) = meter.charge_and_probe(fresh) {
                return Err(abort_partial(
                    stats,
                    b.len() as u64,
                    transitions,
                    peak_queue,
                    CheckError::Budget(e),
                ));
            }
        }
        let id = next as u32;
        next += 1;
        b.arena.load(id, &mut cur);
        let mut any = false;
        for (i, cmd) in c.commands.iter().enumerate() {
            if cmd.guard.eval(&cur) {
                any = true;
                transitions += 1;
                scratch.copy_from_slice(&cur);
                for &(vi, value) in &cmd.updates {
                    scratch[vi.index()] = value.0;
                }
                let (sid, _) = b.intern(&scratch, (id, i as u32));
                succ_cmd.push(i as u32);
                succ_node.push(sid);
            }
        }
        if !any {
            // Deadlocked state: a single stutter self-loop, as the
            // single-pass checker generated.
            transitions += 1;
            succ_cmd.push(STUTTER_CMD);
            succ_node.push(id);
        }
        succ_off.push(succ_cmd.len() as u32);
        peak_queue = peak_queue.max((b.len() - next) as u64);
    }

    if budgeted {
        // Charge the tail states so the *next* build sharing this meter
        // sees an accurate run total; completed work is never failed
        // retroactively, so the probe result is deliberately ignored.
        let _ = meter.charge_and_probe((b.len() - charged) as u64);
    }
    let states = b.len() as u64;
    STATES_EXPLORED.fetch_add(states, Ordering::Relaxed);
    let build_stats = CheckStats {
        states,
        transitions,
        peak_queue,
    };
    stats.absorb(build_stats);

    let mut g = ReachGraph {
        num_vars,
        arena: b.arena,
        parent_node: b.parent_node,
        parent_cmd: b.parent_cmd,
        succ_off,
        succ_cmd,
        succ_node,
        pred_off: Vec::new(),
        pred: Vec::new(),
        init_count,
        packed: false,
        levels,
        peak_level,
        workers: 1,
        stats: build_stats,
    };
    g.build_predecessors();
    Ok(g)
}

/// Serial BFS over the packed arena, expanding successors straight from
/// the raw `u64` key: guards are evaluated field-wise on the key and
/// updates applied as precomputed `(clear, set)` masks, so the per-pop
/// `arena.load` unpack into a scratch `Vec<Value>` is gone entirely.
/// Probe placement (state limit per pop, budget every [`PROBE_STRIDE`]
/// pops) matches [`explore_wide`] exactly, so partial stats on the error
/// paths stay bit-identical to the historical serial engine.
fn explore_packed_serial(
    c: &CompiledModel,
    layout: PackLayout,
    limit: usize,
    meter: &BudgetMeter,
    stats: &mut CheckStats,
    por: bool,
) -> Result<ReachGraph, CheckError> {
    let num_vars = c.num_vars();
    let cap = c.capacity_hint(limit);
    let cmds = lower_packed_cmds(c, &layout);
    let por = por_tables(c, &layout, &cmds, por);
    let all_mask = all_cmds_mask(cmds.len());
    // Guard verdict word per popped node (only filled when the reduction
    // is active); a node's BFS parent is always popped first, so the
    // parent's word is present when a child inherits from it.
    let mut guard_bits: Vec<GuardWord> = Vec::new();
    let mut commute_hits = 0u64;
    let mut f = PackedFrontier::with_capacity(layout, cap);

    for s in c.initial_states() {
        let key = f.layout.pack(&s);
        f.intern_key(key, (NO_PARENT, NO_PARENT));
    }
    let init_count = f.keys.len() as u32;

    let mut succ_off: Vec<u32> = Vec::with_capacity(cap + 1);
    succ_off.push(0);
    let mut succ_cmd: Vec<u32> = Vec::new();
    let mut succ_node: Vec<u32> = Vec::new();
    let mut transitions = 0u64;
    let mut peak_queue = init_count as u64;

    let budgeted = meter.is_limited();
    let mut charged: usize = 0;
    let mut next: usize = 0;
    let mut level_end: usize = 0;
    let mut levels: u32 = 0;
    let mut peak_level: u64 = 0;
    while next < f.keys.len() {
        if next == level_end {
            level_end = f.keys.len();
            levels += 1;
            peak_level = peak_level.max((level_end - next) as u64);
        }
        if f.keys.len() > limit {
            return Err(abort_partial(
                stats,
                f.keys.len() as u64,
                transitions,
                peak_queue,
                CheckError::StateLimit(limit),
            ));
        }
        if budgeted && next.is_multiple_of(PROBE_STRIDE) {
            let fresh = (f.keys.len() - charged) as u64;
            charged = f.keys.len();
            if let Err(e) = meter.charge_and_probe(fresh) {
                return Err(abort_partial(
                    stats,
                    f.keys.len() as u64,
                    transitions,
                    peak_queue,
                    CheckError::Budget(e),
                ));
            }
        }
        let id = next as u32;
        next += 1;
        let key = f.keys[next - 1];
        let mut any = false;
        if let Some(tables) = &por {
            let parent = f.parent_node[id as usize];
            let word = if parent == NO_PARENT {
                eval_guard_word(&cmds, key, all_mask)
            } else {
                let kept = tables.preserves[f.parent_cmd[id as usize] as usize];
                commute_hits += gw_count_ones(kept);
                gw_inherit(
                    guard_bits[parent as usize],
                    kept,
                    eval_guard_word(&cmds, key, gw_andnot(all_mask, kept)),
                )
            };
            guard_bits.push(word);
            for (w, mut m) in word.into_iter().enumerate() {
                while m != 0 {
                    let i = w * 64 + m.trailing_zeros() as usize;
                    m &= m - 1;
                    any = true;
                    transitions += 1;
                    let pc = &cmds[i];
                    let succ = (key & pc.clear) | pc.set;
                    let sid = f.intern_key(succ, (id, i as u32));
                    succ_cmd.push(i as u32);
                    succ_node.push(sid);
                }
            }
        } else {
            for (i, pc) in cmds.iter().enumerate() {
                if pc.guard.eval(key) {
                    any = true;
                    transitions += 1;
                    let succ = (key & pc.clear) | pc.set;
                    let sid = f.intern_key(succ, (id, i as u32));
                    succ_cmd.push(i as u32);
                    succ_node.push(sid);
                }
            }
        }
        if !any {
            transitions += 1;
            succ_cmd.push(STUTTER_CMD);
            succ_node.push(id);
        }
        succ_off.push(succ_cmd.len() as u32);
        peak_queue = peak_queue.max((f.keys.len() - next) as u64);
    }

    if budgeted {
        let _ = meter.charge_and_probe((f.keys.len() - charged) as u64);
    }
    let states = f.keys.len() as u64;
    STATES_EXPLORED.fetch_add(states, Ordering::Relaxed);
    POR_COMMUTE_HITS.fetch_add(commute_hits, Ordering::Relaxed);
    let build_stats = CheckStats {
        states,
        transitions,
        peak_queue,
    };
    stats.absorb(build_stats);

    let mut g = ReachGraph {
        num_vars,
        arena: StateArena::Packed {
            layout: f.layout,
            keys: f.keys,
        },
        parent_node: f.parent_node,
        parent_cmd: f.parent_cmd,
        succ_off,
        succ_cmd,
        succ_node,
        pred_off: Vec::new(),
        pred: Vec::new(),
        init_count,
        packed: true,
        levels,
        peak_level,
        workers: 1,
        stats: build_stats,
    };
    g.build_predecessors();
    Ok(g)
}

/// Frontier chunk size for the work-sharing parallel loop. Small enough
/// to balance uneven guard costs across workers, large enough that the
/// claim counter is not contended.
const LEVEL_CHUNK: usize = 256;

/// One successor edge emitted by a worker: `known` is the successor's
/// node id when it was already interned before this level froze, or
/// `u32::MAX` when `key` is (possibly) fresh and the merge must intern.
#[derive(Clone, Copy)]
struct ChunkEdge {
    cmd: u32,
    known: u32,
    key: u64,
}

/// A worker's output for one claimed chunk: per-node enabled-edge counts
/// (0 means the merge emits the deadlock stutter) and the flat edge list
/// in `(node, command index)` order. When the partial-order reduction is
/// active, `bits` carries each node's guard verdict word (for the next
/// level's inheritance) and `hits` the commute hits counted here.
struct ChunkOut {
    counts: Vec<u32>,
    edges: Vec<ChunkEdge>,
    bits: Vec<GuardWord>,
    hits: u64,
}

#[allow(clippy::too_many_arguments)]
fn expand_chunk(
    ci: usize,
    level_start: usize,
    level_end: usize,
    keys: &[u64],
    index: &FxHashMap<u64, u32>,
    cmds: &[PackedCmd],
    parents: (&[u32], &[u32]),
    guard_bits: &[GuardWord],
    por: Option<&PorTables>,
    all_mask: GuardWord,
) -> ChunkOut {
    let lo = level_start + ci * LEVEL_CHUNK;
    let hi = (lo + LEVEL_CHUNK).min(level_end);
    let mut counts = Vec::with_capacity(hi - lo);
    let mut edges = Vec::new();
    let mut bits = Vec::new();
    let mut hits = 0u64;
    if por.is_some() {
        bits.reserve(hi - lo);
    }
    for (j, &key) in keys[lo..hi].iter().enumerate() {
        let mut cnt = 0u32;
        if let Some(tables) = por {
            // Parents of this level's nodes were interned (and popped)
            // strictly before the level froze, so their guard words are
            // already in the read-only `guard_bits` prefix.
            let parent = parents.0[lo + j];
            let word = if parent == NO_PARENT {
                eval_guard_word(cmds, key, all_mask)
            } else {
                let kept = tables.preserves[parents.1[lo + j] as usize];
                hits += gw_count_ones(kept);
                gw_inherit(
                    guard_bits[parent as usize],
                    kept,
                    eval_guard_word(cmds, key, gw_andnot(all_mask, kept)),
                )
            };
            bits.push(word);
            for (w, mut m) in word.into_iter().enumerate() {
                while m != 0 {
                    let i = w * 64 + m.trailing_zeros() as usize;
                    m &= m - 1;
                    let pc = &cmds[i];
                    let succ = (key & pc.clear) | pc.set;
                    let known = index.get(&succ).copied().unwrap_or(u32::MAX);
                    edges.push(ChunkEdge {
                        cmd: i as u32,
                        known,
                        key: succ,
                    });
                    cnt += 1;
                }
            }
        } else {
            for (i, pc) in cmds.iter().enumerate() {
                if pc.guard.eval(key) {
                    let succ = (key & pc.clear) | pc.set;
                    let known = index.get(&succ).copied().unwrap_or(u32::MAX);
                    edges.push(ChunkEdge {
                        cmd: i as u32,
                        known,
                        key: succ,
                    });
                    cnt += 1;
                }
            }
        }
        counts.push(cnt);
    }
    ChunkOut {
        counts,
        edges,
        bits,
        hits,
    }
}

/// Level-synchronized parallel BFS over the packed arena.
///
/// Each level `[level_start, level_end)` is frozen before expansion:
/// workers claim [`LEVEL_CHUNK`]-sized chunks from an atomic counter and
/// expand them against the *read-only* key arena and visited table,
/// writing successors into per-chunk buffers (claim order is
/// load-balancing only — every chunk's output lands in its own slot).
/// A single-threaded merge then walks the chunks in pop order and
/// interns fresh states in canonical `(parent pop order, command index)`
/// order. Because everything interned before the freeze has an id below
/// `level_end`, and the serial engine also hands out all ids ≥
/// `level_end` in exactly that canonical order, node ids, BFS parents,
/// CSR layout, `peak_queue`, and transition counts are byte-identical to
/// the serial paths at any worker count.
///
/// The budget is charged at level barriers (fresh states since the last
/// barrier, count caps probed before the clock), so count-cap exhaustion
/// trips at the same level on every run regardless of worker scheduling.
/// A panicking worker does not poison the merge: the first payload (in
/// worker order) is re-raised on this thread once all workers have
/// stopped, which the caller-side isolation rings catch as usual.
#[allow(clippy::too_many_arguments)]
fn explore_packed_parallel(
    c: &CompiledModel,
    layout: PackLayout,
    limit: usize,
    meter: &BudgetMeter,
    stats: &mut CheckStats,
    explore_threads: usize,
    por: bool,
) -> Result<ReachGraph, CheckError> {
    let num_vars = c.num_vars();
    let cap = c.capacity_hint(limit);
    let cmds = lower_packed_cmds(c, &layout);
    let por = por_tables(c, &layout, &cmds, por);
    let all_mask = all_cmds_mask(cmds.len());
    // Guard words by node id; frozen (read-only) while a level expands —
    // every parent of a level's nodes sits below `level_start` — and
    // extended by the merge, so the next level sees this one's words.
    let mut guard_bits: Vec<GuardWord> = Vec::new();
    let mut commute_hits = 0u64;
    let mut f = PackedFrontier::with_capacity(layout, cap);

    for s in c.initial_states() {
        let key = f.layout.pack(&s);
        f.intern_key(key, (NO_PARENT, NO_PARENT));
    }
    let init_count = f.keys.len() as u32;

    let mut succ_off: Vec<u32> = Vec::with_capacity(cap + 1);
    succ_off.push(0);
    let mut succ_cmd: Vec<u32> = Vec::new();
    let mut succ_node: Vec<u32> = Vec::new();
    let mut transitions = 0u64;
    let mut peak_queue = init_count as u64;

    let budgeted = meter.is_limited();
    let mut charged: usize = 0;
    let mut level_start: usize = 0;
    let mut levels: u32 = 0;
    let mut peak_level: u64 = 0;

    while level_start < f.keys.len() {
        let level_end = f.keys.len();
        levels += 1;
        peak_level = peak_level.max((level_end - level_start) as u64);
        if level_end > limit {
            return Err(abort_partial(
                stats,
                level_end as u64,
                transitions,
                peak_queue,
                CheckError::StateLimit(limit),
            ));
        }
        if budgeted {
            // Budget at the barrier: charge everything interned since
            // the previous barrier before expanding this level. Count
            // caps are probed before the clock, so the trip point
            // depends only on the level structure — bit-deterministic
            // at any worker count.
            let fresh = (level_end - charged) as u64;
            charged = level_end;
            if let Err(e) = meter.charge_and_probe(fresh) {
                return Err(abort_partial(
                    stats,
                    level_end as u64,
                    transitions,
                    peak_queue,
                    CheckError::Budget(e),
                ));
            }
        }

        let width = level_end - level_start;
        let n_chunks = width.div_ceil(LEVEL_CHUNK);
        let workers = explore_threads.min(n_chunks);
        let mut slots: Vec<Option<ChunkOut>> = Vec::with_capacity(n_chunks);
        slots.resize_with(n_chunks, || None);

        if workers <= 1 {
            // Narrow level: not worth a fan-out, expand inline through
            // the same chunk code path.
            for (ci, slot) in slots.iter_mut().enumerate() {
                *slot = Some(expand_chunk(
                    ci,
                    level_start,
                    level_end,
                    &f.keys,
                    &f.index,
                    &cmds,
                    (&f.parent_node, &f.parent_cmd),
                    &guard_bits,
                    por.as_ref(),
                    all_mask,
                ));
            }
        } else {
            let next_chunk = AtomicUsize::new(0);
            let keys_ref: &[u64] = &f.keys;
            let index_ref = &f.index;
            let cmds_ref = &cmds;
            let parents_ref = (&f.parent_node[..], &f.parent_cmd[..]);
            let guard_ref: &[GuardWord] = &guard_bits;
            let por_ref = por.as_ref();
            let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                let mut mine: Vec<(usize, ChunkOut)> = Vec::new();
                                loop {
                                    let ci = next_chunk.fetch_add(1, Ordering::Relaxed);
                                    if ci >= n_chunks {
                                        break;
                                    }
                                    mine.push((
                                        ci,
                                        expand_chunk(
                                            ci,
                                            level_start,
                                            level_end,
                                            keys_ref,
                                            index_ref,
                                            cmds_ref,
                                            parents_ref,
                                            guard_ref,
                                            por_ref,
                                            all_mask,
                                        ),
                                    ));
                                }
                                mine
                            }))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(Err))
                    .collect()
            });
            let mut first_panic = None;
            for outcome in outcomes {
                match outcome {
                    Ok(mine) => {
                        for (ci, out) in mine {
                            slots[ci] = Some(out);
                        }
                    }
                    Err(payload) => {
                        if first_panic.is_none() {
                            first_panic = Some(payload);
                        }
                    }
                }
            }
            if let Some(payload) = first_panic {
                // Surface the worker panic on the exploring thread so
                // the caller's isolation ring sees it exactly like a
                // serial-path panic.
                std::panic::resume_unwind(payload);
            }
        }

        // Deterministic merge: walk nodes in pop order, interning fresh
        // successors in (pop order, command index) order — the exact
        // order the serial implicit queue would have used.
        for (ci, slot) in slots.into_iter().enumerate() {
            let out = slot.expect("every chunk claimed exactly once");
            // Chunks cover the level contiguously in order, so appending
            // their guard words here keeps `guard_bits` indexed by node
            // id, ready for the next level's inheritance.
            guard_bits.extend_from_slice(&out.bits);
            commute_hits += out.hits;
            let base = level_start + ci * LEVEL_CHUNK;
            let mut e = 0usize;
            for (j, &cnt) in out.counts.iter().enumerate() {
                let id = (base + j) as u32;
                if cnt == 0 {
                    transitions += 1;
                    succ_cmd.push(STUTTER_CMD);
                    succ_node.push(id);
                } else {
                    for edge in &out.edges[e..e + cnt as usize] {
                        transitions += 1;
                        let sid = if edge.known != u32::MAX {
                            edge.known
                        } else {
                            f.intern_key(edge.key, (id, edge.cmd))
                        };
                        succ_cmd.push(edge.cmd);
                        succ_node.push(sid);
                    }
                    e += cnt as usize;
                }
                succ_off.push(succ_cmd.len() as u32);
                peak_queue = peak_queue.max((f.keys.len() - (base + j + 1)) as u64);
            }
        }
        level_start = level_end;
    }

    if budgeted {
        let _ = meter.charge_and_probe((f.keys.len() - charged) as u64);
    }
    let states = f.keys.len() as u64;
    STATES_EXPLORED.fetch_add(states, Ordering::Relaxed);
    POR_COMMUTE_HITS.fetch_add(commute_hits, Ordering::Relaxed);
    let build_stats = CheckStats {
        states,
        transitions,
        peak_queue,
    };
    stats.absorb(build_stats);

    let mut g = ReachGraph {
        num_vars,
        arena: StateArena::Packed {
            layout: f.layout,
            keys: f.keys,
        },
        parent_node: f.parent_node,
        parent_cmd: f.parent_cmd,
        succ_off,
        succ_cmd,
        succ_node,
        pred_off: Vec::new(),
        pred: Vec::new(),
        init_count,
        packed: true,
        levels,
        peak_level,
        workers: explore_threads as u32,
        stats: build_stats,
    };
    g.build_predecessors();
    Ok(g)
}

// ---------------------------------------------------------------------------
// Evaluate phase: property queries over a cached graph
// ---------------------------------------------------------------------------

/// The product of a cached graph with the one-bit obligation monitor.
/// Ephemeral: built per query, in the same BFS order a direct product
/// exploration of the (possibly command-filtered) model would use, so
/// verdicts and counterexample traces are bit-identical to the
/// single-pass checker's.
struct ProductGraph {
    /// Interned (graph node, monitor flag) pairs, in BFS order.
    nodes: Vec<(u32, bool)>,
    /// BFS parent (product id, command index); `None` for roots.
    parent: Vec<Option<(u32, u32)>>,
    /// Adjacency (filled only when `record_edges`).
    edges: Vec<Vec<(u32, u32)>>,
}

fn product_intern(
    pg: &mut ProductGraph,
    index: &mut FxHashMap<u64, u32>,
    gid: u32,
    flag: bool,
    parent: Option<(u32, u32)>,
    record_edges: bool,
) -> u32 {
    let key = ((gid as u64) << 1) | flag as u64;
    if let Some(&id) = index.get(&key) {
        return id;
    }
    let id = pg.nodes.len() as u32;
    index.insert(key, id);
    pg.nodes.push((gid, flag));
    pg.parent.push(parent);
    if record_edges {
        pg.edges.push(Vec::new());
    }
    id
}

/// BFS over the cached adjacency, carrying the monitor flag. `excluded`
/// masks command ids a CEGAR refinement has removed; a node whose
/// outgoing commands are all masked gets the stutter self-loop the
/// filtered model would have.
#[allow(clippy::too_many_arguments)]
fn product_bfs(
    g: &ReachGraph,
    excluded: Option<&CmdIdSet>,
    init_flag: impl Fn(u32) -> bool,
    step_flag: impl Fn(bool, u32) -> bool,
    record_edges: bool,
    limit: usize,
    meter: &BudgetMeter,
    stats: &mut QueryStats,
) -> Result<ProductGraph, CheckError> {
    let cap = g.node_count().max(1);
    let mut pg = ProductGraph {
        nodes: Vec::with_capacity(cap),
        parent: Vec::with_capacity(cap),
        edges: Vec::new(),
    };
    if record_edges {
        pg.edges.reserve(cap);
    }
    let mut index: FxHashMap<u64, u32> =
        FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default());
    let mut transitions = 0u64;

    for gid in 0..g.init_count() {
        product_intern(&mut pg, &mut index, gid, init_flag(gid), None, record_edges);
    }
    let mut peak_queue = pg.nodes.len() as u64;
    let budgeted = meter.is_limited();
    let mut charged = 0usize;
    let mut next = 0usize;
    while next < pg.nodes.len() {
        if pg.nodes.len() > limit {
            stats.absorb(QueryStats {
                nodes_reused: pg.nodes.len() as u64,
                product_states: pg.nodes.len() as u64,
                transitions,
                peak_queue,
            });
            return Err(CheckError::StateLimit(limit));
        }
        if budgeted && next.is_multiple_of(PROBE_STRIDE) {
            let fresh = (pg.nodes.len() - charged) as u64;
            charged = pg.nodes.len();
            if let Err(e) = meter.charge_and_probe(fresh) {
                stats.absorb(QueryStats {
                    nodes_reused: pg.nodes.len() as u64,
                    product_states: pg.nodes.len() as u64,
                    transitions,
                    peak_queue,
                });
                return Err(CheckError::Budget(e));
            }
        }
        let pid = next as u32;
        next += 1;
        let (gid, flag) = pg.nodes[pid as usize];
        let mut any = false;
        for (cmd, succ) in g.successors(gid) {
            if cmd != STUTTER_CMD {
                if let Some(mask) = excluded {
                    if mask.contains(CmdId::new(cmd as usize)) {
                        continue;
                    }
                }
            }
            any = true;
            transitions += 1;
            let new_flag = step_flag(flag, succ);
            let sid = product_intern(
                &mut pg,
                &mut index,
                succ,
                new_flag,
                Some((pid, cmd)),
                record_edges,
            );
            if record_edges {
                pg.edges[pid as usize].push((cmd, sid));
            }
        }
        if !any {
            // Every outgoing command is excluded: the refined model
            // deadlocks here and stutters, exactly as a fresh exploration
            // of the command-filtered model would.
            transitions += 1;
            let new_flag = step_flag(flag, gid);
            let sid = product_intern(
                &mut pg,
                &mut index,
                gid,
                new_flag,
                Some((pid, STUTTER_CMD)),
                record_edges,
            );
            if record_edges {
                pg.edges[pid as usize].push((STUTTER_CMD, sid));
            }
        }
        peak_queue = peak_queue.max((pg.nodes.len() - next) as u64);
    }
    if budgeted {
        // Tail charge: keep the shared run total accurate without
        // failing work that already completed.
        let _ = meter.charge_and_probe((pg.nodes.len() - charged) as u64);
    }
    stats.absorb(QueryStats {
        nodes_reused: pg.nodes.len() as u64,
        product_states: pg.nodes.len() as u64,
        transitions,
        peak_queue,
    });
    Ok(pg)
}

/// Evaluates a compiled expression in every graph node, in id order.
fn eval_nodes(g: &ReachGraph, e: &CExpr) -> Vec<bool> {
    let mut cur: State = vec![0; g.num_vars()];
    (0..g.node_count() as u32)
        .map(|id| {
            g.load_state(id, &mut cur);
            e.eval(&cur)
        })
        .collect()
}

/// Rebuilds the BFS-shortest path to `target` from the graph's own
/// parent pointers (no re-search).
fn rebuild_graph_path(c: &CompiledModel, g: &ReachGraph, target: u32) -> Vec<TraceStep> {
    let mut cur: State = vec![0; g.num_vars()];
    let mut rev = Vec::new();
    let mut id = target;
    loop {
        g.load_state(id, &mut cur);
        let parent = g.parent_node[id as usize];
        let label = if parent == NO_PARENT {
            "init".to_string()
        } else {
            c.label_of(g.parent_cmd[id as usize]).to_string()
        };
        rev.push(TraceStep {
            label,
            state: c.assignment(&cur),
        });
        if parent == NO_PARENT {
            break;
        }
        id = parent;
    }
    rev.reverse();
    rev
}

/// Rebuilds the path to a product node from the product BFS parents.
fn rebuild_product_path(
    c: &CompiledModel,
    g: &ReachGraph,
    pg: &ProductGraph,
    target: u32,
) -> Vec<TraceStep> {
    let mut cur: State = vec![0; g.num_vars()];
    let mut rev = Vec::new();
    let mut id = Some(target);
    while let Some(pid) = id {
        let (gid, _) = pg.nodes[pid as usize];
        g.load_state(gid, &mut cur);
        let label = match pg.parent[pid as usize] {
            Some((_, cmd)) => c.label_of(cmd).to_string(),
            None => "init".to_string(),
        };
        rev.push(TraceStep {
            label,
            state: c.assignment(&cur),
        });
        id = pg.parent[pid as usize].map(|(p, _)| p);
    }
    rev.reverse();
    rev
}

/// Scans graph nodes in BFS (id) order for the first state matching
/// `bad`; the trace comes straight from the graph's parent pointers.
fn scan_graph(
    c: &CompiledModel,
    g: &ReachGraph,
    stats: &mut QueryStats,
    bad: impl Fn(&[Value]) -> bool,
) -> Option<Counterexample> {
    let mut cur: State = vec![0; g.num_vars()];
    for id in 0..g.node_count() as u32 {
        g.load_state(id, &mut cur);
        stats.nodes_reused += 1;
        if bad(&cur) {
            return Some(Counterexample {
                steps: rebuild_graph_path(c, g, id),
                lasso_start: None,
            });
        }
    }
    None
}

/// Scans product nodes in BFS order for the first node matching `bad`.
fn scan_product(
    c: &CompiledModel,
    g: &ReachGraph,
    pg: &ProductGraph,
    bad: impl Fn(u32, bool) -> bool,
) -> Option<Counterexample> {
    for (pid, &(gid, flag)) in pg.nodes.iter().enumerate() {
        if bad(gid, flag) {
            return Some(Counterexample {
                steps: rebuild_product_path(c, g, pg, pid as u32),
                lasso_start: None,
            });
        }
    }
    None
}

/// Answers a compiled property as a query over a cached graph.
///
/// `excluded` is the [`CmdId`] bitset mask of commands removed by CEGAR
/// refinement; the query behaves exactly as if those commands had been
/// deleted from the model and the state space re-explored (same
/// verdicts, same traces), but touches only the cached adjacency and
/// never resolves a name. `model` must be the compiled form of the model
/// the graph was built from.
///
/// # Errors
///
/// Returns [`CheckError::InvalidModel`] on a model/graph shape mismatch;
/// [`CheckError::StateLimit`] if the product BFS exceeds `limit` states.
pub fn check_on_graph(
    model: &CompiledModel,
    graph: &ReachGraph,
    property: &CompiledProperty,
    excluded: &CmdIdSet,
    limit: usize,
    stats: &mut QueryStats,
) -> Result<Verdict, CheckError> {
    check_on_graph_budgeted(
        model,
        graph,
        property,
        excluded,
        limit,
        &BudgetMeter::unlimited(),
        stats,
    )
}

/// [`check_on_graph`] under a live [`BudgetMeter`]: product-monitor
/// states interned by the query are charged against the run-wide budget,
/// so a CEGAR re-query can exhaust the run's budget just like a graph
/// build can.
///
/// # Errors
///
/// Same as [`check_on_graph`], plus [`CheckError::Budget`] when the
/// meter trips.
pub fn check_on_graph_budgeted(
    model: &CompiledModel,
    graph: &ReachGraph,
    property: &CompiledProperty,
    excluded: &CmdIdSet,
    limit: usize,
    meter: &BudgetMeter,
    stats: &mut QueryStats,
) -> Result<Verdict, CheckError> {
    if model.num_vars() != graph.num_vars() {
        return Err(CheckError::InvalidModel(vec![format!(
            "graph/model mismatch: graph has {} variables, model declares {}",
            graph.num_vars(),
            model.num_vars()
        )]));
    }
    check_compiled_on_graph(model, graph, property, excluded, limit, meter, stats)
}

#[allow(clippy::too_many_arguments)]
fn check_compiled_on_graph(
    c: &CompiledModel,
    g: &ReachGraph,
    property: &CompiledProperty,
    excluded: &CmdIdSet,
    limit: usize,
    meter: &BudgetMeter,
    stats: &mut QueryStats,
) -> Result<Verdict, CheckError> {
    let excluded_cmds: Option<&CmdIdSet> = if excluded.is_empty() {
        None
    } else {
        Some(excluded)
    };
    match &property.kind {
        CProp::Invariant { holds } => {
            match excluded_cmds {
                // No refinement: every graph node is reachable, so the
                // invariant is a straight scan in BFS order.
                None => Ok(match scan_graph(c, g, stats, |s| !holds.eval(s)) {
                    Some(ce) => Verdict::Violated(ce),
                    None => Verdict::Holds,
                }),
                Some(mask) => {
                    let holds_at = eval_nodes(g, holds);
                    let pg = product_bfs(
                        g,
                        Some(mask),
                        |_| false,
                        |_, _| false,
                        false,
                        limit,
                        meter,
                        stats,
                    )?;
                    Ok(
                        match scan_product(c, g, &pg, |gid, _| !holds_at[gid as usize]) {
                            Some(ce) => Verdict::Violated(ce),
                            None => Verdict::Holds,
                        },
                    )
                }
            }
        }
        CProp::Reachable { goal } => match excluded_cmds {
            None => Ok(match scan_graph(c, g, stats, |s| goal.eval(s)) {
                Some(ce) => Verdict::Reachable(ce),
                None => Verdict::Unreachable,
            }),
            Some(mask) => {
                let goal_at = eval_nodes(g, goal);
                let pg = product_bfs(
                    g,
                    Some(mask),
                    |_| false,
                    |_, _| false,
                    false,
                    limit,
                    meter,
                    stats,
                )?;
                Ok(
                    match scan_product(c, g, &pg, |gid, _| goal_at[gid as usize]) {
                        Some(ce) => Verdict::Reachable(ce),
                        None => Verdict::Unreachable,
                    },
                )
            }
        },
        CProp::Precedence {
            event,
            requires_before,
        } => {
            // Flag = "prerequisite has occurred". Violation: event in a
            // state where the (updated) flag is still false.
            let event_at = eval_nodes(g, event);
            let before_at = eval_nodes(g, requires_before);
            let pg = product_bfs(
                g,
                excluded_cmds,
                |gid| before_at[gid as usize],
                |f, gid| f || before_at[gid as usize],
                false,
                limit,
                meter,
                stats,
            )?;
            Ok(
                match scan_product(c, g, &pg, |gid, flag| !flag && event_at[gid as usize]) {
                    Some(ce) => Verdict::Violated(ce),
                    None => Verdict::Holds,
                },
            )
        }
        CProp::Response { trigger, response } => {
            check_response_on_graph(c, g, trigger, response, excluded_cmds, limit, meter, stats)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_response_on_graph(
    c: &CompiledModel,
    g: &ReachGraph,
    trigger: &CExpr,
    response: &CExpr,
    excluded: Option<&CmdIdSet>,
    limit: usize,
    meter: &BudgetMeter,
    stats: &mut QueryStats,
) -> Result<Verdict, CheckError> {
    // Obligation monitor: pending' = (pending ∨ trigger(s')) ∧ ¬response(s').
    let trig_at = eval_nodes(g, trigger);
    let resp_at = eval_nodes(g, response);
    let pg = product_bfs(
        g,
        excluded,
        |gid| trig_at[gid as usize] && !resp_at[gid as usize],
        |f, gid| (f || trig_at[gid as usize]) && !resp_at[gid as usize],
        true,
        limit,
        meter,
        stats,
    )?;

    // Restrict to pending nodes and find a fair cycle among them.
    let pending: Vec<bool> = pg.nodes.iter().map(|&(_, f)| f).collect();
    let sccs = tarjan_sccs(&pg, &pending);
    // Fairness constraints were compiled with the model — evaluating
    // them here touches no string table.
    let fairness: Vec<Vec<bool>> = c.fairness.iter().map(|f| eval_nodes(g, f)).collect();
    for scc in &sccs {
        if !scc_has_cycle(&pg, scc, &pending) {
            continue;
        }
        // Every fairness constraint must be satisfiable inside the SCC.
        let fair_ok = fairness.iter().all(|f_at| {
            scc.iter()
                .any(|&pid| f_at[pg.nodes[pid as usize].0 as usize])
        });
        if !fair_ok {
            continue;
        }
        let entry = scc[0];
        let prefix = rebuild_product_path(c, g, &pg, entry);
        let cycle = build_fair_cycle(c, g, &pg, scc, entry, &fairness);
        let lasso_start = prefix.len() - 1;
        let mut steps = prefix;
        steps.extend(cycle);
        return Ok(Verdict::Violated(Counterexample {
            steps,
            lasso_start: Some(lasso_start),
        }));
    }
    Ok(Verdict::Holds)
}

// ---------------------------------------------------------------------------
// Public one-shot API
// ---------------------------------------------------------------------------

/// Checks a property with the default state limit.
///
/// # Errors
///
/// Returns [`CheckError::InvalidModel`] if the model fails validation
/// and [`CheckError::StateLimit`] if the state space exceeds
/// [`DEFAULT_STATE_LIMIT`] — use [`check_bounded`] for an explicit
/// limit. This API never panics.
pub fn check(model: &Model, property: &Property) -> Result<Verdict, CheckError> {
    check_bounded(model, property, DEFAULT_STATE_LIMIT)
}

/// Explores the reachable state space and reports its size.
///
/// # Errors
///
/// Returns [`CheckError`] for invalid models or state-limit blowups.
pub fn explore_stats(model: &Model, limit: usize) -> Result<ExploreStats, CheckError> {
    let g = build_reach_graph(model, limit)?;
    Ok(ExploreStats {
        states: g.node_count(),
        transitions: g.edge_count(),
    })
}

/// Validates a property's expressions against a model without exploring
/// anything — the same checks (and the same error ordering) the full
/// check would apply before paying for exploration.
///
/// # Errors
///
/// Returns [`CheckError::InvalidModel`] with the model's problems first,
/// then the property's.
pub fn validate_property(model: &Model, property: &Property) -> Result<(), CheckError> {
    let c = CompiledModel::new(model)?;
    c.compile_property(property).map(drop)
}

/// Checks a property with an explicit state limit.
///
/// # Errors
///
/// Returns [`CheckError::InvalidModel`] if the model references
/// undeclared variables or out-of-domain values, and
/// [`CheckError::StateLimit`] if exploration exceeds `limit` states.
pub fn check_bounded(
    model: &Model,
    property: &Property,
    limit: usize,
) -> Result<Verdict, CheckError> {
    let mut stats = CheckStats::default();
    check_bounded_stats(model, property, limit, &mut stats)
}

/// [`check_bounded`] that additionally records the named counters on
/// `collector`: `smv.checks`, `smv.states_explored`, `smv.transitions`,
/// and `smv.peak_queue` (high-water mark). Counters are recorded even
/// when the check errors out, so a state-limit blowup is visible in the
/// telemetry. Returns the verdict together with this check's stats.
///
/// # Errors
///
/// Same as [`check_bounded`].
pub fn check_bounded_traced(
    model: &Model,
    property: &Property,
    limit: usize,
    collector: &Collector,
) -> Result<(Verdict, CheckStats), CheckError> {
    let mut stats = CheckStats::default();
    let result = check_bounded_stats(model, property, limit, &mut stats);
    collector.add("smv.checks", 1);
    collector.add("smv.states_explored", stats.states);
    collector.add("smv.transitions", stats.transitions);
    collector.record_max("smv.peak_queue", stats.peak_queue);
    result.map(|verdict| (verdict, stats))
}

/// Checks a property, accumulating exploration telemetry into `stats`.
/// `stats` grows even on the error path (the state-limit case records
/// how many states were interned before the limit tripped), so CEGAR
/// callers can keep one accumulator across refinement iterations.
///
/// Internally this is explore + evaluate: it builds a private
/// [`ReachGraph`] and answers the property as a query over it. Callers
/// checking many properties against one model should build the graph
/// once ([`build_reach_graph`]) and use [`check_on_graph`] instead.
///
/// # Errors
///
/// Same as [`check_bounded`].
pub fn check_bounded_stats(
    model: &Model,
    property: &Property,
    limit: usize,
    stats: &mut CheckStats,
) -> Result<Verdict, CheckError> {
    let c = CompiledModel::new(model)?;
    // Reject bad property vocabulary before paying for exploration,
    // preserving the historical error precedence (model problems, then
    // property problems, then state-limit blowups).
    let cp = c.compile_property(property)?;
    let meter = BudgetMeter::unlimited();
    let g = explore_graph(&c, limit, &meter, stats, 1, por_default())?;
    let mut q = QueryStats::default();
    let verdict = check_compiled_on_graph(&c, &g, &cp, &c.exclusion_set(), limit, &meter, &mut q)?;
    stats.absorb(CheckStats {
        states: q.product_states,
        transitions: q.transitions,
        peak_queue: q.peak_queue,
    });
    Ok(verdict)
}

// ---------------------------------------------------------------------------
// Cycle machinery on the product graph
// ---------------------------------------------------------------------------

/// Tarjan SCC over the subgraph induced by `mask` (iterative).
fn tarjan_sccs(g: &ProductGraph, mask: &[bool]) -> Vec<Vec<u32>> {
    let n = g.nodes.len();
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs = Vec::new();

    #[derive(Clone)]
    struct Frame {
        node: u32,
        edge: usize,
    }

    for start in 0..n as u32 {
        if !mask[start as usize] || index[start as usize] != u32::MAX {
            continue;
        }
        let mut call: Vec<Frame> = vec![Frame {
            node: start,
            edge: 0,
        }];
        index[start as usize] = next_index;
        low[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(frame) = call.last_mut() {
            let u = frame.node;
            let edges = &g.edges[u as usize];
            if frame.edge < edges.len() {
                let (_, v) = edges[frame.edge];
                frame.edge += 1;
                if !mask[v as usize] {
                    continue;
                }
                if index[v as usize] == u32::MAX {
                    index[v as usize] = next_index;
                    low[v as usize] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v as usize] = true;
                    call.push(Frame { node: v, edge: 0 });
                } else if on_stack[v as usize] {
                    low[u as usize] = low[u as usize].min(index[v as usize]);
                }
            } else {
                call.pop();
                if let Some(parent) = call.last() {
                    let p = parent.node;
                    low[p as usize] = low[p as usize].min(low[u as usize]);
                }
                if low[u as usize] == index[u as usize] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        scc.push(w);
                        if w == u {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

fn scc_has_cycle(g: &ProductGraph, scc: &[u32], mask: &[bool]) -> bool {
    if scc.len() > 1 {
        return true;
    }
    let u = scc[0];
    g.edges[u as usize]
        .iter()
        .any(|&(_, v)| v == u && mask[u as usize])
}

/// Builds a cycle within the SCC starting and ending at `entry`, visiting
/// a witness state for every fairness constraint (each constraint given
/// as its per-graph-node truth table).
fn build_fair_cycle(
    c: &CompiledModel,
    g: &ReachGraph,
    pg: &ProductGraph,
    scc: &[u32],
    entry: u32,
    fairness: &[Vec<bool>],
) -> Vec<TraceStep> {
    use std::collections::HashSet;
    let members: HashSet<u32> = scc.iter().copied().collect();
    let fair_at = |f_at: &[bool], pid: u32| f_at[pg.nodes[pid as usize].0 as usize];

    // BFS within the SCC from `from` to the first node satisfying `pred`,
    // returning the steps taken (labels + states), excluding `from`.
    let bfs = |from: u32, pred: &dyn Fn(u32) -> bool| -> Vec<(u32, u32)> {
        let mut prev: HashMap<u32, (u32, u32)> = HashMap::new();
        let mut queue = VecDeque::from([from]);
        let mut found = None;
        // Note: `from` itself only counts if it has a self-edge path; we
        // look for the first satisfying node reached by ≥1 edge.
        'outer: while let Some(u) = queue.pop_front() {
            for &(cmd, v) in &pg.edges[u as usize] {
                if !members.contains(&v) {
                    continue;
                }
                if let std::collections::hash_map::Entry::Vacant(e) = prev.entry(v) {
                    e.insert((u, cmd));
                    if pred(v) {
                        found = Some(v);
                        break 'outer;
                    }
                    queue.push_back(v);
                }
            }
        }
        let Some(found) = found else {
            return Vec::new();
        };
        // Walk parent pointers back to `from`. The target may equal
        // `from` (a self-loop / cycle back to the start), so the walk is
        // do-while-shaped: always take at least one edge.
        let mut rev = Vec::new();
        let mut cur = found;
        loop {
            let (p, cmd) = prev[&cur];
            rev.push((cmd, cur));
            if p == from || rev.len() > pg.nodes.len() {
                break;
            }
            cur = p;
        }
        rev.reverse();
        rev
    };

    let mut pos = entry;
    let mut segments: Vec<(u32, u32)> = Vec::new();
    for f_at in fairness {
        if fair_at(f_at, pos) {
            continue; // already satisfied here
        }
        let seg = bfs(pos, &|pid| fair_at(f_at, pid));
        if let Some(&(_, last)) = seg.last() {
            pos = last;
        }
        segments.extend(seg);
    }
    // Close the loop back to entry.
    if pos != entry || segments.is_empty() {
        let seg = bfs(pos, &|pid| pid == entry);
        segments.extend(seg);
    }
    let mut cur: State = vec![0; g.num_vars()];
    segments
        .into_iter()
        .map(|(cmd, pid)| {
            g.load_state(pg.nodes[pid as usize].0, &mut cur);
            TraceStep {
                label: c.label_of(cmd).to_string(),
                state: c.assignment(&cur),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GuardedCmd;

    /// `check` with the error path unwrapped — every model in this
    /// module is valid and far below the default state limit.
    fn chk(m: &Model, p: &Property) -> Verdict {
        check(m, p).expect("test model valid")
    }

    /// A 3-state token ring: idle -> req -> done -> idle.
    fn ring(with_drop: bool) -> Model {
        let mut m = Model::new("ring");
        m.declare_var("st", &["idle", "req", "done"], &["idle"]);
        m.add_command(GuardedCmd::new("request", Expr::var_eq("st", "idle")).set("st", "req"));
        m.add_command(GuardedCmd::new("serve", Expr::var_eq("st", "req")).set("st", "done"));
        m.add_command(GuardedCmd::new("reset", Expr::var_eq("st", "done")).set("st", "idle"));
        if with_drop {
            // The adversary may hold the system in `req` forever.
            m.add_command(GuardedCmd::new("adv_drop", Expr::var_eq("st", "req")).set("st", "req"));
        }
        m
    }

    #[test]
    fn invariant_holds() {
        let m = ring(false);
        let v = chk(
            &m,
            &Property::invariant("no_ghost", Expr::var_ne("st", "done")),
        );
        assert!(matches!(v, Verdict::Violated(_)), "done is reachable");
        let v2 = chk(
            &m,
            &Property::invariant("domain", Expr::var_in("st", ["idle", "req", "done"])),
        );
        assert_eq!(v2, Verdict::Holds);
    }

    #[test]
    fn invariant_counterexample_is_shortest_path() {
        let m = ring(false);
        let Verdict::Violated(ce) = chk(
            &m,
            &Property::invariant("never_done", Expr::var_ne("st", "done")),
        ) else {
            panic!("expected violation");
        };
        assert_eq!(ce.command_labels(), vec!["request", "serve"]);
        assert_eq!(ce.final_value("st"), Some("done"));
        assert!(!ce.is_lasso());
    }

    #[test]
    fn reachability() {
        let m = ring(false);
        assert!(matches!(
            chk(
                &m,
                &Property::reachable("can_serve", Expr::var_eq("st", "done"))
            ),
            Verdict::Reachable(_)
        ));
        let mut m2 = Model::new("m2");
        m2.declare_var("x", &["a", "b"], &["a"]);
        assert_eq!(
            chk(&m2, &Property::reachable("never_b", Expr::var_eq("x", "b"))),
            Verdict::Unreachable
        );
    }

    #[test]
    fn response_holds_without_adversary() {
        let m = ring(false);
        let p = Property::response(
            "served",
            Expr::var_eq("st", "req"),
            Expr::var_eq("st", "done"),
        );
        assert_eq!(chk(&m, &p), Verdict::Holds);
    }

    #[test]
    fn response_violated_by_adversary_stall() {
        let m = ring(true);
        let p = Property::response(
            "served",
            Expr::var_eq("st", "req"),
            Expr::var_eq("st", "done"),
        );
        let Verdict::Violated(ce) = chk(&m, &p) else {
            panic!("adversary stall must violate response");
        };
        assert!(ce.is_lasso());
        // The loop consists of adv_drop firings.
        let lasso = ce.lasso_start.unwrap();
        assert!(ce.steps[lasso + 1..].iter().all(|s| s.label == "adv_drop"));
    }

    #[test]
    fn fairness_excludes_pure_stall_loops() {
        let mut m = ring(true);
        // Fairness: the service fires infinitely often — excludes the
        // pure-drop loop (no state in the drop cycle satisfies st=done).
        m.add_fairness(Expr::var_eq("st", "done"));
        let p = Property::response(
            "served",
            Expr::var_eq("st", "req"),
            Expr::var_eq("st", "done"),
        );
        assert_eq!(chk(&m, &p), Verdict::Holds);
    }

    #[test]
    fn deadlock_stutter_violates_response() {
        let mut m = Model::new("dead");
        m.declare_var("st", &["waiting", "go"], &["waiting"]);
        // No command at all: the system deadlocks in `waiting`.
        let p = Property::response(
            "go_happens",
            Expr::var_eq("st", "waiting"),
            Expr::var_eq("st", "go"),
        );
        let Verdict::Violated(ce) = chk(&m, &p) else {
            panic!("deadlock must violate response");
        };
        assert!(ce.steps.iter().any(|s| s.label == "stutter"));
    }

    #[test]
    fn precedence_detects_missing_prerequisite() {
        let mut m = Model::new("prec");
        m.declare_var("st", &["start", "auth", "data"], &["start"]);
        m.add_command(GuardedCmd::new("skip_auth", Expr::var_eq("st", "start")).set("st", "data"));
        m.add_command(GuardedCmd::new("auth", Expr::var_eq("st", "start")).set("st", "auth"));
        m.add_command(GuardedCmd::new("then_data", Expr::var_eq("st", "auth")).set("st", "data"));
        let p = Property::precedence(
            "auth_before_data",
            Expr::var_eq("st", "data"),
            Expr::var_eq("st", "auth"),
        );
        let Verdict::Violated(ce) = chk(&m, &p) else {
            panic!("skip path must violate precedence");
        };
        assert_eq!(ce.command_labels(), vec!["skip_auth"]);
    }

    #[test]
    fn precedence_holds_when_ordered() {
        let mut m = Model::new("prec2");
        m.declare_var("st", &["start", "auth", "data"], &["start"]);
        m.add_command(GuardedCmd::new("auth", Expr::var_eq("st", "start")).set("st", "auth"));
        m.add_command(GuardedCmd::new("then_data", Expr::var_eq("st", "auth")).set("st", "data"));
        let p = Property::precedence(
            "auth_before_data",
            Expr::var_eq("st", "data"),
            Expr::var_eq("st", "auth"),
        );
        assert_eq!(chk(&m, &p), Verdict::Holds);
    }

    #[test]
    fn multiple_initial_states_explored() {
        let mut m = Model::new("multi");
        m.declare_var("x", &["a", "b", "c"], &["a", "b"]);
        let v = chk(&m, &Property::reachable("from_b", Expr::var_eq("x", "b")));
        assert!(matches!(v, Verdict::Reachable(_)));
        assert_eq!(
            chk(&m, &Property::reachable("c", Expr::var_eq("x", "c"))),
            Verdict::Unreachable
        );
    }

    #[test]
    fn state_limit_enforced() {
        let mut m = Model::new("big");
        // 8 independent 4-valued variables -> 4^8 = 65536 states.
        let domain = ["0", "1", "2", "3"];
        for i in 0..8 {
            m.declare_var(&format!("v{i}"), &domain, &["0"]);
        }
        for i in 0..8 {
            for (a, b) in [("0", "1"), ("1", "2"), ("2", "3"), ("3", "0")] {
                m.add_command(
                    GuardedCmd::new(format!("v{i}_{a}to{b}"), Expr::var_eq(format!("v{i}"), a))
                        .set(format!("v{i}"), b),
                );
            }
        }
        let err = check_bounded(&m, &Property::invariant("x", Expr::True), 1000).unwrap_err();
        assert!(matches!(err, CheckError::StateLimit(1000)));
        // And with an adequate limit it completes.
        let ok = check_bounded(&m, &Property::invariant("x", Expr::True), 100_000).unwrap();
        assert_eq!(ok, Verdict::Holds);
    }

    #[test]
    fn invalid_model_rejected() {
        let mut m = Model::new("bad");
        m.declare_var("x", &["a"], &["a"]);
        m.add_command(GuardedCmd::new("boom", Expr::var_eq("ghost", "1")));
        let err = check_bounded(&m, &Property::invariant("x", Expr::True), 100).unwrap_err();
        assert!(matches!(err, CheckError::InvalidModel(_)));
    }

    #[test]
    fn telemetry_counts_explored_states() {
        let before = states_explored_total();
        let m = ring(false);
        chk(
            &m,
            &Property::invariant("domain", Expr::var_in("st", ["idle", "req", "done"])),
        );
        assert!(states_explored_total() >= before + 3);
    }

    #[test]
    fn explore_stats_counts() {
        let m = ring(false);
        let stats = explore_stats(&m, 1000).unwrap();
        assert_eq!(stats.states, 3);
        assert_eq!(stats.transitions, 3);
    }

    #[test]
    fn check_stats_match_exploration() {
        let m = ring(false);
        let p = Property::invariant("domain", Expr::var_in("st", ["idle", "req", "done"]));
        let mut stats = CheckStats::default();
        let verdict = check_bounded_stats(&m, &p, 1000, &mut stats).unwrap();
        assert_eq!(verdict, Verdict::Holds);
        assert_eq!(stats.states, 3);
        assert_eq!(stats.transitions, 3);
        assert!(stats.peak_queue >= 1);

        // The accumulator folds across checks: a second check doubles the
        // monotonic counters and keeps the peak as a max.
        let first = stats;
        check_bounded_stats(&m, &p, 1000, &mut stats).unwrap();
        assert_eq!(stats.states, first.states * 2);
        assert_eq!(stats.transitions, first.transitions * 2);
        assert_eq!(stats.peak_queue, first.peak_queue);
    }

    #[test]
    fn stats_recorded_even_when_state_limit_trips() {
        let mut m = Model::new("big");
        let domain = ["0", "1", "2", "3"];
        for i in 0..8 {
            m.declare_var(&format!("v{i}"), &domain, &["0"]);
        }
        for i in 0..8 {
            for (a, b) in [("0", "1"), ("1", "2"), ("2", "3"), ("3", "0")] {
                m.add_command(
                    GuardedCmd::new(format!("v{i}_{a}to{b}"), Expr::var_eq(format!("v{i}"), a))
                        .set(format!("v{i}"), b),
                );
            }
        }
        let mut stats = CheckStats::default();
        let err = check_bounded_stats(&m, &Property::invariant("x", Expr::True), 1000, &mut stats)
            .unwrap_err();
        assert!(matches!(err, CheckError::StateLimit(1000)));
        assert!(stats.states > 1000, "partial exploration must be visible");
    }

    #[test]
    fn traced_check_records_collector_counters() {
        use procheck_telemetry::Collector;
        let m = ring(false);
        let p = Property::invariant("domain", Expr::var_in("st", ["idle", "req", "done"]));

        let collector = Collector::enabled();
        let (verdict, stats) = check_bounded_traced(&m, &p, 1000, &collector).unwrap();
        assert_eq!(verdict, Verdict::Holds);
        assert_eq!(collector.counter_value("smv.checks"), 1);
        assert_eq!(collector.counter_value("smv.states_explored"), stats.states);
        assert_eq!(
            collector.counter_value("smv.transitions"),
            stats.transitions
        );
        assert_eq!(collector.counter_value("smv.peak_queue"), stats.peak_queue);

        // A disabled collector yields the identical verdict and stats.
        let (v2, s2) = check_bounded_traced(&m, &p, 1000, &Collector::disabled()).unwrap();
        assert_eq!(v2, verdict);
        assert_eq!(s2, stats);
    }

    // --- explore-once / query-many -------------------------------------

    /// Every property kind answered as a graph query must match a direct
    /// (explore-per-check) run exactly, traces included.
    #[test]
    fn graph_queries_match_direct_checks() {
        for with_drop in [false, true] {
            let mut m = ring(with_drop);
            m.add_fairness(Expr::var_eq("st", "done"));
            let g = build_reach_graph(&m, 1000).unwrap();
            assert!(g.is_packed(), "3-value domain must bit-pack");
            let props = [
                Property::invariant("inv", Expr::var_ne("st", "done")),
                Property::invariant("dom", Expr::var_in("st", ["idle", "req", "done"])),
                Property::reachable("done", Expr::var_eq("st", "done")),
                Property::reachable("ghost", Expr::var_eq("st", "idle")),
                Property::response(
                    "served",
                    Expr::var_eq("st", "req"),
                    Expr::var_eq("st", "done"),
                ),
                Property::precedence(
                    "req_first",
                    Expr::var_eq("st", "done"),
                    Expr::var_eq("st", "req"),
                ),
            ];
            let c = CompiledModel::new(&m).unwrap();
            for p in &props {
                let direct = check_bounded(&m, p, 1000).unwrap();
                let cp = c.compile_property(p).unwrap();
                let mut q = QueryStats::default();
                let cached = check_on_graph(&c, &g, &cp, &c.exclusion_set(), 1000, &mut q).unwrap();
                assert_eq!(direct, cached, "{} (with_drop={with_drop})", p.name());
                assert!(q.nodes_reused > 0, "query must report reuse");
            }
        }
    }

    /// Excluding command ids from a query must be indistinguishable
    /// from deleting those commands from the model and re-exploring.
    #[test]
    fn excluded_query_matches_filtered_model() {
        let full = ring(true); // request, serve, reset, adv_drop
        let filtered = ring(false); // identical minus adv_drop
        let g = build_reach_graph(&full, 1000).unwrap();
        let props = [
            Property::invariant("inv", Expr::var_ne("st", "done")),
            Property::reachable("done", Expr::var_eq("st", "done")),
            Property::response(
                "served",
                Expr::var_eq("st", "req"),
                Expr::var_eq("st", "done"),
            ),
            Property::precedence(
                "req_first",
                Expr::var_eq("st", "done"),
                Expr::var_eq("st", "req"),
            ),
        ];
        let c = CompiledModel::new(&full).unwrap();
        let mut mask = c.exclusion_set();
        for id in c.commands_labeled(Sym::intern("adv_drop")) {
            mask.insert(id);
        }
        for p in &props {
            let direct = check_bounded(&filtered, p, 1000).unwrap();
            let cp = c.compile_property(p).unwrap();
            let mut q = QueryStats::default();
            let masked = check_on_graph(&c, &g, &cp, &mask, 1000, &mut q).unwrap();
            assert_eq!(direct, masked, "{} (mask)", p.name());
            assert!(q.nodes_reused > 0, "masked query must report reuse");
        }
    }

    /// A node whose every command is excluded must deadlock-stutter in
    /// the query, exactly as the filtered model would.
    #[test]
    fn excluding_all_commands_synthesizes_stutter() {
        let m = ring(false);
        let g = build_reach_graph(&m, 1000).unwrap();
        let c = CompiledModel::new(&m).unwrap();
        let mut mask = c.exclusion_set();
        for id in c.commands_labeled(Sym::intern("serve")) {
            mask.insert(id);
        }
        let p = Property::response(
            "served",
            Expr::var_eq("st", "req"),
            Expr::var_eq("st", "done"),
        );
        let cp = c.compile_property(&p).unwrap();
        let mut q = QueryStats::default();
        let Verdict::Violated(ce) = check_on_graph(&c, &g, &cp, &mask, 1000, &mut q).unwrap()
        else {
            panic!("removing serve must stall the ring");
        };
        assert!(ce.is_lasso());
        assert!(ce.steps.iter().any(|s| s.label == "stutter"));

        // Reference: the same model with `serve` actually deleted.
        let mut stalled = Model::new("ring");
        stalled.declare_var("st", &["idle", "req", "done"], &["idle"]);
        stalled
            .add_command(GuardedCmd::new("request", Expr::var_eq("st", "idle")).set("st", "req"));
        stalled.add_command(GuardedCmd::new("reset", Expr::var_eq("st", "done")).set("st", "idle"));
        let Verdict::Violated(ref_ce) = check_bounded(&stalled, &p, 1000).unwrap() else {
            panic!("reference model must also stall");
        };
        assert_eq!(ce.command_labels(), ref_ce.command_labels());
        assert_eq!(ce.lasso_start, ref_ce.lasso_start);
    }

    /// Models whose packed width exceeds 64 bits fall back to the wide
    /// arena and still answer queries identically.
    #[test]
    fn wide_fallback_matches_direct_checks() {
        let mut m = Model::new("wide");
        let domain: Vec<String> = (0..64).map(|i| format!("v{i}")).collect();
        let domain_refs: Vec<&str> = domain.iter().map(String::as_str).collect();
        for i in 0..11 {
            m.declare_var(&format!("x{i}"), &domain_refs, &["v0"]);
        }
        m.add_command(GuardedCmd::new("step", Expr::var_eq("x0", "v0")).set("x0", "v1"));
        let g = build_reach_graph(&m, 1000).unwrap();
        assert!(!g.is_packed(), "11 x 6 bits must overflow the u64 key");
        assert_eq!(g.node_count(), 2);
        let p = Property::reachable("moved", Expr::var_eq("x0", "v1"));
        let direct = check_bounded(&m, &p, 1000).unwrap();
        let c = CompiledModel::new(&m).unwrap();
        let cp = c.compile_property(&p).unwrap();
        let mut q = QueryStats::default();
        let cached = check_on_graph(&c, &g, &cp, &c.exclusion_set(), 1000, &mut q).unwrap();
        assert_eq!(direct, cached);
        assert_eq!(direct.trace().unwrap(), cached.trace().unwrap());
    }

    /// Structural sanity of the cached graph on the ring: CSR successor
    /// and predecessor views agree, parents form a BFS tree.
    #[test]
    fn reach_graph_structure_is_consistent() {
        let m = ring(true);
        let g = build_reach_graph(&m, 1000).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.init_count(), 1);
        // Every successor edge appears as a predecessor link and vice versa.
        let mut fwd = Vec::new();
        for u in 0..g.node_count() as u32 {
            for (_, v) in g.successors(u) {
                fwd.push((u, v));
            }
        }
        let mut bwd = Vec::new();
        for v in 0..g.node_count() as u32 {
            for &u in g.predecessors(v) {
                bwd.push((u, v));
            }
        }
        fwd.sort_unstable();
        bwd.sort_unstable();
        assert_eq!(fwd, bwd);
        assert_eq!(g.edge_count(), fwd.len());
        assert_eq!(g.build_stats().states, g.node_count() as u64);
        assert_eq!(g.build_stats().transitions, g.edge_count() as u64);
    }

    /// The graph build honours the state limit exactly like the
    /// single-pass exploration did.
    #[test]
    fn graph_build_honours_state_limit() {
        let mut m = Model::new("big");
        let domain = ["0", "1", "2", "3"];
        for i in 0..8 {
            m.declare_var(&format!("v{i}"), &domain, &["0"]);
        }
        for i in 0..8 {
            for (a, b) in [("0", "1"), ("1", "2"), ("2", "3"), ("3", "0")] {
                m.add_command(
                    GuardedCmd::new(format!("v{i}_{a}to{b}"), Expr::var_eq(format!("v{i}"), a))
                        .set(format!("v{i}"), b),
                );
            }
        }
        let mut stats = CheckStats::default();
        let err = build_reach_graph_stats(&m, 1000, &mut stats).unwrap_err();
        assert!(matches!(err, CheckError::StateLimit(1000)));
        assert!(stats.states > 1000, "partial exploration must be visible");
    }

    /// `validate_property` mirrors the full check's error precedence
    /// without exploring anything.
    #[test]
    fn validate_property_matches_check_errors() {
        let m = ring(false);
        assert!(
            validate_property(&m, &Property::invariant("ok", Expr::var_eq("st", "idle"))).is_ok()
        );
        let bad = Property::invariant("bad", Expr::var_eq("ghost", "1"));
        let via_validate = validate_property(&m, &bad).unwrap_err();
        let via_check = check_bounded(&m, &bad, 1000).unwrap_err();
        assert_eq!(via_validate, via_check);
    }

    /// 12 one-way boolean toggles: 2^12 = 4096 reachable states, enough
    /// to cross several [`PROBE_STRIDE`] windows.
    fn lattice() -> Model {
        let mut m = Model::new("lattice");
        for i in 0..12 {
            let name = format!("b{i}");
            m.declare_var(&name, &["0", "1"], &["0"]);
            m.add_command(
                GuardedCmd::new(format!("set{i}"), Expr::var_eq(name.clone(), "0"))
                    .set(name.clone(), "1"),
            );
        }
        m
    }

    #[test]
    fn budget_total_state_cap_degrades_build_deterministically() {
        use crate::budget::Budget;
        let budget = Budget::unlimited().with_total_states(2000);
        let run = || {
            let c = CompiledModel::new(&lattice()).expect("valid");
            let meter = budget.start();
            let mut stats = CheckStats::default();
            let err = build_reach_graph_budgeted(&c, 1_000_000, &meter, &mut stats, 1)
                .expect_err("cap below 4096 reachable states");
            (err, stats)
        };
        let (err, stats) = run();
        assert_eq!(
            err,
            CheckError::Budget(BudgetExceeded::TotalStates { limit: 2000 })
        );
        assert!(
            stats.states > 0 && stats.transitions > 0,
            "partial stats absorbed on the budget path: {stats:?}"
        );
        // Count-based exhaustion is reproducible: same trip point, same
        // partial stats, every run.
        let (err2, stats2) = run();
        assert_eq!(err, err2);
        assert_eq!(stats, stats2);
    }

    /// Compares every field of two graphs, including the raw packed
    /// arena keys — the parallel frontier must reproduce the serial
    /// engine's intern order exactly, not merely an isomorphic graph.
    fn assert_graphs_identical(a: &ReachGraph, b: &ReachGraph) {
        match (&a.arena, &b.arena) {
            (StateArena::Packed { keys: ka, .. }, StateArena::Packed { keys: kb, .. }) => {
                assert_eq!(ka, kb, "packed arena keys diverge")
            }
            _ => panic!("both graphs should use the packed arena"),
        }
        assert_eq!(a.parent_node, b.parent_node);
        assert_eq!(a.parent_cmd, b.parent_cmd);
        assert_eq!(a.succ_off, b.succ_off);
        assert_eq!(a.succ_cmd, b.succ_cmd);
        assert_eq!(a.succ_node, b.succ_node);
        assert_eq!(a.pred_off, b.pred_off);
        assert_eq!(a.pred, b.pred);
        assert_eq!(a.init_count, b.init_count);
        assert_eq!(a.levels, b.levels);
        assert_eq!(a.peak_level, b.peak_level);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn parallel_explore_matches_serial_exactly() {
        for model in [ring(true), ring(false), lattice()] {
            let c = CompiledModel::new(&model).expect("valid");
            let mut s1 = CheckStats::default();
            let serial =
                build_reach_graph_budgeted(&c, 1_000_000, &BudgetMeter::unlimited(), &mut s1, 1)
                    .expect("fits");
            for width in [2usize, 4, 8] {
                let mut s2 = CheckStats::default();
                let parallel = build_reach_graph_budgeted(
                    &c,
                    1_000_000,
                    &BudgetMeter::unlimited(),
                    &mut s2,
                    width,
                )
                .expect("fits");
                assert_graphs_identical(&serial, &parallel);
                assert_eq!(s1, s2, "absorbed stats diverge at width {width}");
                assert_eq!(parallel.explore_workers(), width as u32);
            }
        }
    }

    /// Budget-at-barrier: count-cap exhaustion under the parallel
    /// frontier trips at the same level with the same partial stats on
    /// every run — worker scheduling never shows in the outcome.
    #[test]
    fn parallel_budget_exhaustion_is_deterministic() {
        use crate::budget::Budget;
        let budget = Budget::unlimited().with_total_states(2000);
        let run = || {
            let c = CompiledModel::new(&lattice()).expect("valid");
            let meter = budget.start();
            let mut stats = CheckStats::default();
            let err = build_reach_graph_budgeted(&c, 1_000_000, &meter, &mut stats, 4)
                .expect_err("cap below 4096 reachable states");
            (err, stats)
        };
        let (err, stats) = run();
        assert_eq!(
            err,
            CheckError::Budget(BudgetExceeded::TotalStates { limit: 2000 })
        );
        assert!(stats.states > 0 && stats.transitions > 0, "{stats:?}");
        let (err2, stats2) = run();
        assert_eq!(err, err2);
        assert_eq!(stats, stats2);
    }

    #[test]
    fn parallel_state_limit_reports_partial_stats() {
        let c = CompiledModel::new(&lattice()).expect("valid");
        let mut stats = CheckStats::default();
        let err = build_reach_graph_budgeted(&c, 100, &BudgetMeter::unlimited(), &mut stats, 4)
            .expect_err("4096 states exceed a limit of 100");
        assert_eq!(err, CheckError::StateLimit(100));
        assert!(stats.states > 100, "partial stats absorbed: {stats:?}");
    }

    #[test]
    fn budget_zero_deadline_degrades_build() {
        use crate::budget::Budget;
        let c = CompiledModel::new(&lattice()).expect("valid");
        let meter = Budget::unlimited()
            .with_deadline(std::time::Duration::ZERO)
            .start();
        let mut stats = CheckStats::default();
        let err = build_reach_graph_budgeted(&c, 1_000_000, &meter, &mut stats, 1)
            .expect_err("deadline already passed");
        assert!(matches!(
            err,
            CheckError::Budget(BudgetExceeded::Deadline { .. })
        ));
    }

    #[test]
    fn unlimited_budget_matches_unbudgeted_build() {
        let c = CompiledModel::new(&lattice()).expect("valid");
        let mut s1 = CheckStats::default();
        let g1 = build_reach_graph_compiled(&c, 1_000_000, &mut s1).expect("fits");
        let mut s2 = CheckStats::default();
        let g2 = build_reach_graph_budgeted(&c, 1_000_000, &BudgetMeter::unlimited(), &mut s2, 1)
            .expect("fits");
        assert_eq!(g1.node_count(), 4096);
        assert_eq!(g1.node_count(), g2.node_count());
        assert_eq!(g1.edge_count(), g2.edge_count());
        assert_eq!(s1, s2);
    }

    #[test]
    fn budget_charges_product_queries_too() {
        use crate::budget::Budget;
        let m = ring(true);
        let c = CompiledModel::new(&m).expect("valid");
        let mut build = CheckStats::default();
        let g = build_reach_graph_compiled(&c, 1000, &mut build).expect("tiny");
        let p = c
            .compile_property(&Property::response(
                "served",
                Expr::var_eq("st", "req"),
                Expr::var_eq("st", "done"),
            ))
            .expect("valid property");
        // Saturate the cap up front: the query's first probe must trip.
        let meter = Budget::unlimited().with_total_states(10).start();
        meter.charge_and_probe(10).expect("exactly at cap");
        let mut q = QueryStats::default();
        let err = check_on_graph_budgeted(&c, &g, &p, &c.exclusion_set(), 1000, &meter, &mut q)
            .expect_err("query budget exhausted");
        assert_eq!(
            err,
            CheckError::Budget(BudgetExceeded::TotalStates { limit: 10 })
        );
    }
}
