//! Cone-of-influence slicing: project a compiled model onto the
//! variables a property can observe, directly or transitively.
//!
//! A property's *support* is the set of variables its expressions read.
//! The *cone of influence* closes that set under dependency: a command
//! is **kept** iff it updates an in-cone variable, and every kept
//! command's guard variables join the cone (they steer when in-cone
//! updates fire), to a fixpoint. Everything else — out-of-cone
//! variables, and commands whose updates only touch them — is dropped
//! from the projected [`CompiledModel`], shrinking the packed
//! state-arena layout and the per-property reachable space.
//!
//! The projection is *verdict- and trace-preserving* for the safety
//! classes (invariant, reachability, precedence), including under CEGAR
//! exclusion masks:
//!
//! * the sliced BFS visits exactly the first occurrences of the full
//!   BFS's projected states, in the same order, so scans find the same
//!   first bad state;
//! * the first bad node's parent chain uses only kept commands (a
//!   dropped command cannot change an in-cone variable, so its edges are
//!   projection-preserving and never first-reach a fresh projection);
//! * CEGAR exclusions name trace labels, which are kept-command labels,
//!   so full and sliced loops exclude the same commands.
//!
//! Response properties are never sliced: their verdicts additionally
//! read fairness constraints and lasso structure over the full state.
//! Traces found on the sliced model mention only kept variables;
//! [`expand_counterexample`] replays them against the full model at the
//! report edge so everything user-visible stays in full-variable form.
//!
//! Kill-switch: `PROCHECK_NO_SLICE=1` (see [`slice_default`]), mirrored
//! by the pipeline's `AnalysisConfig::slice` flag.

use crate::checker::{CCmd, CExpr, CProp, CVar, CompiledModel, CompiledProperty};
use crate::fxhash::{FxBuildHasher, FxHashMap};
use crate::trace::{Counterexample, TraceStep};
use procheck_ident::{Sym, VarId};
use std::collections::BTreeSet;

type Value = crate::reach::Value;

/// Default for cone-of-influence slicing: enabled unless
/// `PROCHECK_NO_SLICE` is set in the environment (the kill-switch
/// mirroring `PROCHECK_NO_GRAPH_CACHE` / `PROCHECK_NO_POR`).
pub fn slice_default() -> bool {
    std::env::var_os("PROCHECK_NO_SLICE").is_none()
}

/// The identity of a cone: which of the full model's variables and
/// commands survive the projection (both ascending, in source index
/// space). Two properties over the same threat configuration with equal
/// signatures see the *same* sliced model, so a graph cache can key
/// slots by `(ThreatConfig, ConeSig)` and share one exploration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConeSig {
    /// Kept variable indices of the full model, ascending.
    pub kept_vars: Vec<u32>,
    /// Kept command indices of the full model, ascending.
    pub kept_cmds: Vec<u32>,
}

impl ConeSig {
    /// Number of variables in the cone.
    pub fn var_count(&self) -> usize {
        self.kept_vars.len()
    }

    /// Number of commands kept by the projection.
    pub fn cmd_count(&self) -> usize {
        self.kept_cmds.len()
    }
}

/// A model projected onto one property's cone of influence.
pub struct SlicedModel {
    /// The projected model: kept variables and commands only, in source
    /// order, with the source labels, domains, and value ids. Fairness
    /// constraints are deliberately absent — response properties (the
    /// only consumers of fairness) are never sliced.
    pub model: CompiledModel,
    /// The cone's identity, usable as a cache key.
    pub sig: ConeSig,
}

/// Collects the variables an expression reads.
fn expr_support(e: &CExpr, out: &mut BTreeSet<VarId>) {
    match e {
        CExpr::True | CExpr::False => {}
        CExpr::Eq(v, _) | CExpr::Ne(v, _) | CExpr::In(v, _) => {
            out.insert(*v);
        }
        CExpr::And(xs) | CExpr::Or(xs) => {
            for x in xs {
                expr_support(x, out);
            }
        }
        CExpr::Not(x) => expr_support(x, out),
    }
}

/// The property's support set: every variable its compiled expressions
/// read. This is the seed of the cone-of-influence closure.
pub(crate) fn property_support(prop: &CompiledProperty) -> BTreeSet<VarId> {
    let mut s = BTreeSet::new();
    match &prop.kind {
        CProp::Invariant { holds } => expr_support(holds, &mut s),
        CProp::Reachable { goal } => expr_support(goal, &mut s),
        CProp::Response { trigger, response } => {
            expr_support(trigger, &mut s);
            expr_support(response, &mut s);
        }
        CProp::Precedence {
            event,
            requires_before,
        } => {
            expr_support(event, &mut s);
            expr_support(requires_before, &mut s);
        }
    }
    s
}

/// Rewrites an in-cone expression into the sliced variable index space.
/// Every variable it reads is in the cone by closure, so the remap never
/// misses.
fn remap_expr(e: &CExpr, remap: &[Option<VarId>]) -> CExpr {
    let var = |v: &VarId| remap[v.index()].expect("cone closure covers guard variables");
    match e {
        CExpr::True => CExpr::True,
        CExpr::False => CExpr::False,
        CExpr::Eq(v, x) => CExpr::Eq(var(v), *x),
        CExpr::Ne(v, x) => CExpr::Ne(var(v), *x),
        CExpr::In(v, xs) => CExpr::In(var(v), xs.clone()),
        CExpr::And(xs) => CExpr::And(xs.iter().map(|x| remap_expr(x, remap)).collect()),
        CExpr::Or(xs) => CExpr::Or(xs.iter().map(|x| remap_expr(x, remap)).collect()),
        CExpr::Not(x) => CExpr::Not(Box::new(remap_expr(x, remap))),
    }
}

/// Projects `full` onto the cone of influence of `prop`, or `None` when
/// the projection would not be sound or would not reduce anything:
///
/// * response properties (fairness/lasso structure needs the full
///   model);
/// * models with duplicate command labels (trace re-expansion and CEGAR
///   exclusion equivalence both key on labels; generated threat models
///   always label uniquely);
/// * a cone already covering every variable.
pub fn slice_for_property(full: &CompiledModel, prop: &CompiledProperty) -> Option<SlicedModel> {
    if matches!(prop.kind, CProp::Response { .. }) {
        return None;
    }
    let mut labels = BTreeSet::new();
    for cmd in &full.commands {
        if !labels.insert(cmd.label) {
            return None;
        }
    }

    // Closure: keep any command updating an in-cone variable; kept
    // guards pull their variables into the cone; repeat to fixpoint.
    // Commands with no in-cone update are projection-preserving
    // self-loops from the cone's point of view and are dropped.
    let mut in_cone = vec![false; full.num_vars()];
    for v in property_support(prop) {
        in_cone[v.index()] = true;
    }
    let mut kept = vec![false; full.commands.len()];
    loop {
        let mut changed = false;
        for (i, cmd) in full.commands.iter().enumerate() {
            if kept[i] || !cmd.updates.iter().any(|(v, _)| in_cone[v.index()]) {
                continue;
            }
            kept[i] = true;
            changed = true;
            let mut guard_vars = BTreeSet::new();
            expr_support(&cmd.guard, &mut guard_vars);
            for v in guard_vars {
                in_cone[v.index()] = true;
            }
        }
        if !changed {
            break;
        }
    }
    if in_cone.iter().all(|&b| b) {
        return None;
    }

    let kept_vars: Vec<usize> = (0..full.num_vars()).filter(|&i| in_cone[i]).collect();
    let mut remap: Vec<Option<VarId>> = vec![None; full.num_vars()];
    for (new, &old) in kept_vars.iter().enumerate() {
        remap[old] = Some(VarId::new(new));
    }

    let vars: Vec<CVar> = kept_vars
        .iter()
        .map(|&old| {
            let src = &full.vars[old];
            CVar {
                name: src.name,
                domain: src.domain.clone(),
                init: src.init.clone(),
            }
        })
        .collect();
    let mut var_index = FxHashMap::with_capacity_and_hasher(vars.len(), FxBuildHasher::default());
    for (i, v) in vars.iter().enumerate() {
        var_index.insert(v.name, VarId::new(i));
    }
    let val_index = kept_vars
        .iter()
        .map(|&old| full.val_index[old].clone())
        .collect();

    let kept_cmds: Vec<usize> = (0..full.commands.len()).filter(|&i| kept[i]).collect();
    let commands: Vec<CCmd> = kept_cmds
        .iter()
        .map(|&old| {
            let src = &full.commands[old];
            CCmd {
                label: src.label,
                guard: remap_expr(&src.guard, &remap),
                // A kept command may also write out-of-cone variables;
                // those updates vanish with their targets.
                updates: src
                    .updates
                    .iter()
                    .filter_map(|&(v, x)| remap[v.index()].map(|nv| (nv, x)))
                    .collect(),
            }
        })
        .collect();

    let sig = ConeSig {
        kept_vars: kept_vars.iter().map(|&i| i as u32).collect(),
        kept_cmds: kept_cmds.iter().map(|&i| i as u32).collect(),
    };
    Some(SlicedModel {
        model: CompiledModel {
            vars,
            var_index,
            val_index,
            commands,
            fairness: Vec::new(),
        },
        sig,
    })
}

/// Re-expands a counterexample found on a sliced model into the
/// full-variable form the unsliced checker would have produced, by
/// replaying the trace's command labels against the full model:
///
/// * the root is the first full initial state (in the full model's
///   enumeration order, which is its intern order) whose kept-variable
///   projection matches the sliced trace's first state — exactly where
///   the full exploration's parent chain bottoms out;
/// * each subsequent step applies the labeled command's constant updates
///   (`stutter` leaves the state unchanged), so out-of-cone variables
///   evolve precisely as the full run would have evolved them.
///
/// Labels are preserved verbatim, so CEGAR feasibility checks see the
/// same label sequence whether they run before or after expansion.
pub fn expand_counterexample(full: &CompiledModel, ce: &Counterexample) -> Counterexample {
    let Some(first) = ce.steps.first() else {
        return ce.clone();
    };
    let matches_first = |s: &[Value]| {
        first.state.iter().all(|(name, value)| {
            let vi = full.var_index[&Sym::intern(name)];
            full.vars[vi.index()].domain[s[vi.index()] as usize].as_str() == value
        })
    };
    let mut state = full
        .initial_states()
        .into_iter()
        .find(|s| matches_first(s))
        .expect("sliced trace roots at the projection of a full initial state");
    let mut steps = Vec::with_capacity(ce.steps.len());
    steps.push(TraceStep {
        label: first.label.clone(),
        state: full.assignment(&state),
    });
    for step in &ce.steps[1..] {
        if step.label != "stutter" {
            let cmd = full
                .commands
                .iter()
                .find(|c| c.label.as_str() == step.label)
                .expect("trace labels name full-model commands");
            for &(v, x) in &cmd.updates {
                state[v.index()] = x.0;
            }
        }
        steps.push(TraceStep {
            label: step.label.clone(),
            state: full.assignment(&state),
        });
    }
    Counterexample {
        steps,
        lasso_start: ce.lasso_start,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{
        build_reach_graph_compiled, check_bounded, check_on_graph, CheckStats, Property,
        QueryStats, Verdict,
    };
    use crate::expr::Expr;
    use crate::model::{GuardedCmd, Model};

    /// Two independent one-way toggles: a property over `a` must slice
    /// `b` (and its command) away.
    fn two_toggles() -> Model {
        let mut m = Model::new("tt");
        m.declare_var("a", &["0", "1"], &["0"]);
        m.declare_var("b", &["0", "1"], &["0"]);
        m.add_command(GuardedCmd::new("set_a", Expr::var_eq("a", "0")).set("a", "1"));
        m.add_command(GuardedCmd::new("set_b", Expr::var_eq("b", "0")).set("b", "1"));
        m
    }

    #[test]
    fn cone_drops_independent_variable() {
        let c = CompiledModel::new(&two_toggles()).unwrap();
        let p = c
            .compile_property(&Property::reachable("a1", Expr::var_eq("a", "1")))
            .unwrap();
        assert_eq!(
            property_support(&p).into_iter().collect::<Vec<_>>(),
            vec![VarId::new(0)]
        );
        let sliced = slice_for_property(&c, &p).expect("b is out of cone");
        assert_eq!(sliced.sig.kept_vars, vec![0]);
        assert_eq!(sliced.sig.kept_cmds, vec![0]);
        assert_eq!(sliced.model.num_vars(), 1);
        assert_eq!(sliced.model.command_count(), 1);
    }

    #[test]
    fn transitive_guard_dependencies_enter_the_cone() {
        let mut m = Model::new("chain");
        m.declare_var("x", &["0", "1"], &["0"]);
        m.declare_var("y", &["0", "1"], &["0"]);
        m.declare_var("z", &["0", "1"], &["0"]);
        m.add_command(GuardedCmd::new("arm", Expr::var_eq("x", "0")).set("x", "1"));
        m.add_command(GuardedCmd::new("drive", Expr::var_eq("x", "1")).set("y", "1"));
        m.add_command(GuardedCmd::new("noise", Expr::var_eq("z", "0")).set("z", "1"));
        let c = CompiledModel::new(&m).unwrap();
        let p = c
            .compile_property(&Property::reachable("y1", Expr::var_eq("y", "1")))
            .unwrap();
        let sliced = slice_for_property(&c, &p).expect("z is out of cone");
        // y's updater `drive` is kept; its guard pulls in x, keeping
        // `arm` too; z and `noise` go.
        assert_eq!(sliced.sig.kept_vars, vec![0, 1]);
        assert_eq!(sliced.sig.kept_cmds, vec![0, 1]);
    }

    #[test]
    fn sliced_query_matches_full_with_expanded_trace() {
        let m = two_toggles();
        let c = CompiledModel::new(&m).unwrap();
        let p = Property::reachable("a1", Expr::var_eq("a", "1"));
        let full = check_bounded(&m, &p, 1000).unwrap();
        let cp = c.compile_property(&p).unwrap();
        let sliced = slice_for_property(&c, &cp).unwrap();
        let scp = sliced.model.compile_property(&p).unwrap();
        let mut stats = CheckStats::default();
        let g = build_reach_graph_compiled(&sliced.model, 1000, &mut stats).unwrap();
        assert_eq!(g.node_count(), 2, "sliced space is the `a` toggle alone");
        let mut q = QueryStats::default();
        let v = check_on_graph(
            &sliced.model,
            &g,
            &scp,
            &sliced.model.exclusion_set(),
            1000,
            &mut q,
        )
        .unwrap();
        let (Verdict::Reachable(full_ce), Verdict::Reachable(sliced_ce)) = (full, v) else {
            panic!("both runs must reach a=1");
        };
        assert_eq!(expand_counterexample(&c, &sliced_ce), full_ce);
    }

    #[test]
    fn response_properties_are_never_sliced() {
        let c = CompiledModel::new(&two_toggles()).unwrap();
        let p = c
            .compile_property(&Property::response(
                "r",
                Expr::var_eq("a", "0"),
                Expr::var_eq("a", "1"),
            ))
            .unwrap();
        assert!(slice_for_property(&c, &p).is_none());
    }

    #[test]
    fn duplicate_labels_refuse_to_slice() {
        let mut m = two_toggles();
        // A second command reusing `set_a`'s label breaks label-keyed
        // replay, so the slicer must fall back to the full model.
        m.add_command(GuardedCmd::new("set_a", Expr::var_eq("b", "1")).set("b", "0"));
        let c = CompiledModel::new(&m).unwrap();
        let p = c
            .compile_property(&Property::reachable("a1", Expr::var_eq("a", "1")))
            .unwrap();
        assert!(slice_for_property(&c, &p).is_none());
    }

    #[test]
    fn full_cone_returns_none() {
        let c = CompiledModel::new(&two_toggles()).unwrap();
        let p = c
            .compile_property(&Property::invariant(
                "both",
                Expr::And(vec![Expr::var_ne("a", "1"), Expr::var_ne("b", "1")]),
            ))
            .unwrap();
        assert!(slice_for_property(&c, &p).is_none());
    }
}
