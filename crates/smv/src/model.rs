//! Guarded-command models over finite enum domains.
//!
//! A model declares variables (each with a symbolic value domain and a set
//! of allowed initial values) and commands. Each step of the system
//! nondeterministically fires one *enabled* command (guard true in the
//! current state), applying its assignments; unassigned variables keep
//! their values. When no command is enabled the state stutters — matching
//! the paper's threat model, where the adversary may simply do nothing
//! (the "trivial counterexample" of attack P3 is exactly an infinite
//! stutter of dropped messages).
//!
//! All names — variables, domain values, command labels — are interned
//! [`Sym`]s. Composition layers hand whole interned domains around by
//! value (`Vec<Sym>` is a vector of `u32`-sized handles), and the checker
//! compiles them to dense indices exactly once per model.

use crate::expr::Expr;
use procheck_ident::Sym;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A variable declaration: symbolic enum domain plus allowed initial
/// values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VarDecl {
    /// Variable name.
    pub name: Sym,
    /// The value domain, in declaration order.
    pub domain: Vec<Sym>,
    /// Allowed initial values (non-deterministic initial choice when more
    /// than one).
    pub init: Vec<Sym>,
}

/// A guarded command: `label: guard → var := value, …`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardedCmd {
    /// Label reported in counterexample traces (the CEGAR loop keys its
    /// feasibility queries on these).
    pub label: Sym,
    /// Enabling condition over the current state.
    pub guard: Expr,
    /// Assignments applied when the command fires (constant values —
    /// nondeterministic choices are modelled as multiple commands).
    pub updates: BTreeMap<Sym, Sym>,
}

impl GuardedCmd {
    /// Creates a command with the given label and guard and no updates.
    pub fn new(label: impl Into<Sym>, guard: Expr) -> Self {
        GuardedCmd {
            label: label.into(),
            guard,
            updates: BTreeMap::new(),
        }
    }

    /// Adds an assignment `var := value`.
    pub fn set(mut self, var: impl Into<Sym>, value: impl Into<Sym>) -> Self {
        self.updates.insert(var.into(), value.into());
        self
    }
}

/// A complete guarded-command model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Model {
    name: String,
    vars: Vec<VarDecl>,
    commands: Vec<GuardedCmd>,
    fairness: Vec<Expr>,
}

impl Model {
    /// Creates an empty model.
    pub fn new(name: impl Into<String>) -> Self {
        Model {
            name: name.into(),
            vars: Vec::new(),
            commands: Vec::new(),
            fairness: Vec::new(),
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a variable.
    ///
    /// # Panics
    ///
    /// Panics if the name is already declared, the domain is empty, or an
    /// initial value is not in the domain — model construction errors are
    /// programmer errors.
    pub fn declare_var(&mut self, name: &str, domain: &[&str], init: &[&str]) {
        self.declare_var_syms(
            Sym::intern(name),
            domain.iter().map(|s| Sym::intern(s)).collect(),
            init.iter().map(|s| Sym::intern(s)).collect(),
        );
    }

    /// Declares a variable from already-interned symbols. Composition
    /// layers that hold interned alphabets use this directly — no string
    /// materialisation, the domain vector is moved in as-is.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Model::declare_var`].
    pub fn declare_var_syms(&mut self, name: Sym, domain: Vec<Sym>, init: Vec<Sym>) {
        assert!(
            self.vars.iter().all(|v| v.name != name),
            "variable `{name}` declared twice"
        );
        assert!(!domain.is_empty(), "variable `{name}` has an empty domain");
        for i in &init {
            assert!(
                domain.contains(i),
                "initial value `{i}` of `{name}` not in domain"
            );
        }
        assert!(!init.is_empty(), "variable `{name}` has no initial value");
        self.vars.push(VarDecl { name, domain, init });
    }

    /// Declares a variable with owned strings (used by generated models).
    pub fn declare_var_owned(&mut self, name: String, domain: Vec<String>, init: Vec<String>) {
        self.declare_var_syms(
            Sym::from(name),
            domain.into_iter().map(Sym::from).collect(),
            init.into_iter().map(Sym::from).collect(),
        );
    }

    /// Adds a guarded command.
    pub fn add_command(&mut self, cmd: GuardedCmd) {
        self.commands.push(cmd);
    }

    /// Adds a fairness constraint: every infinite execution considered by
    /// liveness checking must satisfy the expression infinitely often
    /// (`JUSTICE` in SMV terms).
    pub fn add_fairness(&mut self, constraint: Expr) {
        self.fairness.push(constraint);
    }

    /// The declared variables.
    pub fn vars(&self) -> &[VarDecl] {
        &self.vars
    }

    /// The commands.
    pub fn commands(&self) -> &[GuardedCmd] {
        &self.commands
    }

    /// The fairness constraints.
    pub fn fairness(&self) -> &[Expr] {
        &self.fairness
    }

    /// Looks up a variable declaration.
    pub fn var(&self, name: &str) -> Option<&VarDecl> {
        self.vars.iter().find(|v| v.name.as_str() == name)
    }

    /// Looks up a variable declaration by interned symbol.
    pub fn var_sym(&self, name: Sym) -> Option<&VarDecl> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// Validates that every variable/value referenced by commands and
    /// fairness constraints is declared; returns human-readable problems.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let check_expr = |e: &Expr, ctx: &str, problems: &mut Vec<String>| {
            self.validate_expr(e, ctx, problems);
        };
        for cmd in &self.commands {
            check_expr(&cmd.guard, cmd.label.as_str(), &mut problems);
            for (&var, value) in &cmd.updates {
                match self.var_sym(var) {
                    None => problems.push(format!(
                        "command `{}` assigns undeclared `{var}`",
                        cmd.label
                    )),
                    Some(decl) if !decl.domain.contains(value) => problems.push(format!(
                        "command `{}` assigns `{value}` outside `{var}`'s domain",
                        cmd.label
                    )),
                    _ => {}
                }
            }
        }
        for f in &self.fairness {
            check_expr(f, "fairness", &mut problems);
        }
        problems
    }

    /// Validates a property expression against the declared domains,
    /// appending human-readable problems (used by the checker before it
    /// compiles a property).
    pub fn validate_property_expr(&self, e: &Expr, problems: &mut Vec<String>) {
        self.validate_expr(e, "property", problems);
    }

    fn validate_expr(&self, e: &Expr, ctx: &str, problems: &mut Vec<String>) {
        match e {
            Expr::True | Expr::False => {}
            Expr::Eq(v, x) | Expr::Ne(v, x) => match self.var_sym(*v) {
                None => problems.push(format!("`{ctx}` references undeclared `{v}`")),
                Some(decl) if !decl.domain.contains(x) => {
                    problems.push(format!("`{ctx}` compares `{v}` to out-of-domain `{x}`"))
                }
                _ => {}
            },
            Expr::In(v, xs) => match self.var_sym(*v) {
                None => problems.push(format!("`{ctx}` references undeclared `{v}`")),
                Some(decl) => {
                    for x in xs {
                        if !decl.domain.contains(x) {
                            problems
                                .push(format!("`{ctx}` tests `{v}` against out-of-domain `{x}`"));
                        }
                    }
                }
            },
            Expr::And(xs) | Expr::Or(xs) => {
                for x in xs {
                    self.validate_expr(x, ctx, problems);
                }
            }
            Expr::Not(x) => self.validate_expr(x, ctx, problems),
            Expr::Implies(a, b) => {
                self.validate_expr(a, ctx, problems);
                self.validate_expr(b, ctx, problems);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggle() -> Model {
        let mut m = Model::new("toggle");
        m.declare_var("light", &["off", "on"], &["off"]);
        m.add_command(GuardedCmd::new("on", Expr::var_eq("light", "off")).set("light", "on"));
        m
    }

    #[test]
    fn declaration_and_lookup() {
        let m = toggle();
        assert_eq!(
            m.var("light").unwrap().domain,
            vec![Sym::intern("off"), Sym::intern("on")]
        );
        assert!(m.var("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_declaration_panics() {
        let mut m = toggle();
        m.declare_var("light", &["x"], &["x"]);
    }

    #[test]
    #[should_panic(expected = "not in domain")]
    fn bad_init_panics() {
        let mut m = Model::new("m");
        m.declare_var("x", &["a"], &["b"]);
    }

    #[test]
    fn validation_catches_undeclared_and_out_of_domain() {
        let mut m = toggle();
        m.add_command(GuardedCmd::new("bad", Expr::var_eq("ghost", "1")).set("light", "purple"));
        m.add_fairness(Expr::var_eq("light", "sideways"));
        let problems = m.validate();
        assert_eq!(problems.len(), 3, "{problems:?}");
    }

    #[test]
    fn clean_model_validates() {
        assert!(toggle().validate().is_empty());
    }

    #[test]
    fn sym_declaration_path_matches_str_path() {
        let mut a = Model::new("m");
        a.declare_var("x", &["p", "q"], &["p"]);
        let mut b = Model::new("m");
        b.declare_var_syms(
            Sym::intern("x"),
            vec![Sym::intern("p"), Sym::intern("q")],
            vec![Sym::intern("p")],
        );
        assert_eq!(a, b);
    }
}
