//! Re-export of the workspace FxHash hasher.
//!
//! The implementation lives in `procheck-ident` now (the symbol table
//! is its heaviest user); this module keeps the historical
//! `procheck_smv::fxhash` path working for the checker's hot-path
//! containers and for external callers.

pub use procheck_ident::fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
