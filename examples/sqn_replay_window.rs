//! P1's quantitative argument (paper §VII-A, Fig 5): how long does a
//! captured `authentication_request` stay replayable?
//!
//! With the COTS choice of 5 IND bits and no freshness limit, a captured
//! challenge's SQN-array index survives 31 subsequent challenges — at
//! operator authentication cadences, *days*. The optional Annex C limit
//! `L` shrinks the window to a handful of challenges.
//!
//! ```sh
//! cargo run --release -p procheck-core --example sqn_replay_window
//! ```

use procheck_nas::sqn::SqnConfig;
use procheck_testbed::traces::{generate_trace, replay_window};

fn main() {
    println!("synthetic operator traces: exponential authentication inter-arrivals\n");
    println!(
        "{:<28} {:>10} {:>18} {:>14}",
        "configuration", "mean gap", "challenges survived", "window"
    );
    println!("{}", "-".repeat(76));
    for (label, cfg) in [
        ("4G/5G vendor default (L unset)", SqnConfig::default()),
        (
            "with freshness limit L=4",
            SqnConfig {
                ind_bits: 5,
                freshness_limit: Some(4),
            },
        ),
        (
            "with freshness limit L=16",
            SqnConfig {
                ind_bits: 5,
                freshness_limit: Some(16),
            },
        ),
    ] {
        for mean_hours in [2.0f64, 6.0, 12.0] {
            let trace = generate_trace(cfg, 42, 64, mean_hours);
            let w = replay_window(cfg, &trace, 8);
            println!(
                "{:<28} {:>8.1} h {:>18} {:>11.1} h",
                label, mean_hours, w.challenges_survived, w.window_hours
            );
        }
        println!();
    }
    println!(
        "the vendor-default window spans days (the paper observed days-old\n\
         challenges accepted on commercial networks); the optional freshness\n\
         limit — which no major vendor implements — closes it."
    );
}
