//! The paper's running example (§V, Fig 3): instrument a simplified
//! C-like implementation of the attach-accept handling, execute the test
//! case, and extract the one-transition FSM from the resulting log.
//!
//! ```sh
//! cargo run --release -p procheck-core --example running_example
//! ```

use procheck_extractor::{extract_fsm, ExtractorConfig};
use procheck_instrument::parse_log;
use procheck_instrument::source::{
    extract_globals_from_header, instrument_source, InstrumentOptions, FIG3_HEADER, FIG3_SOURCE,
};

fn main() {
    // (a)–(c): automatic source-level instrumentation of the example code.
    let globals = extract_globals_from_header(FIG3_HEADER);
    println!("globals harvested from the header: {globals:?}\n");
    let options = InstrumentOptions { globals };
    let result = instrument_source(FIG3_SOURCE, &options);
    println!(
        "instrumented {} function(s) with {} print statement(s):\n",
        result.functions.len(),
        result.inserted_statements
    );
    println!("{}", result.text);

    // (d): the log the instrumented code produces when the conformance
    // test case "attach_accept with valid MAC → attach_complete" runs.
    // (The C-like code is not executed — this is the log its print
    // statements produce on that test case, as in the paper's Fig 3(d).)
    let log_text = "\
[pc] enter air_msg_handler
[pc] global emm_state=emm_registered_initiated_smc
[pc] enter recv_attach_accept
[pc] global emm_state=emm_registered_initiated_smc
[pc] local mac_valid=true
[pc] enter send_attach_complete
[pc] global emm_state=emm_registered_initiated_smc
[pc] exit send_attach_complete
[pc] global emm_state=emm_registered
[pc] exit recv_attach_accept
[pc] exit air_msg_handler
";
    println!("execution log (Fig 3(d)):\n{log_text}");

    // Model extraction (Algorithm 1).
    let log = parse_log(log_text);
    let fsm = extract_fsm("ue", &log, &ExtractorConfig::for_reference_ue());
    println!("extracted FSM:");
    for t in fsm.transitions() {
        println!("  {t}");
    }
    assert_eq!(
        fsm.transition_count(),
        1,
        "the example yields one transition"
    );
    let t = fsm.transitions().next().expect("one transition");
    assert_eq!(t.from.as_str(), "emm_registered_initiated_smc");
    assert_eq!(t.to.as_str(), "emm_registered");
    println!("\nincoming state, outgoing state, condition and action all recovered ✓");
}
