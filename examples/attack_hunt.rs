//! Attack hunt: the paper's headline use case. Runs the complete
//! ProChecker pipeline (conformance → extraction → threat composition →
//! CEGAR model checking → testbed validation) against one implementation
//! and prints every finding with its classification.
//!
//! ```sh
//! cargo run --release -p procheck-core --example attack_hunt -- srs
//! cargo run --release -p procheck-core --example attack_hunt -- oai
//! cargo run --release -p procheck-core --example attack_hunt -- reference
//! ```

use procheck::pipeline::{analyze_implementation, AnalysisConfig};
use procheck_stack::quirks::Implementation;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "srs".into());
    let implementation = match which.as_str() {
        "reference" | "closed" => Implementation::Reference,
        "oai" => Implementation::Oai,
        _ => Implementation::Srs,
    };
    println!("analysing {} …", implementation.name());
    let report = analyze_implementation(implementation, &AnalysisConfig::default());

    println!("\n{}", report.render_text());

    // Show one counterexample in full — the P1 trace.
    if let Some(r) = report.result("S01") {
        if let procheck::report::PropertyOutcome::Attack(trace) = &r.outcome {
            println!("\nP1 counterexample (S01), validated by the crypto verifier:");
            println!("{trace}");
        }
    }
}
