//! Quickstart: extract a formal model from an implementation and check a
//! property against it — the whole ProChecker loop in ~40 lines.
//!
//! ```sh
//! cargo run --release -p procheck-core --example quickstart
//! ```

use procheck::cegar::{cegar_check, FinalVerdict};
use procheck::pipeline::{extract_models, AnalysisConfig};
use procheck_fsm::dot;
use procheck_props::registry;
use procheck_props::Check;
use procheck_stack::quirks::Implementation;
use procheck_threat::{build_threat_model, StepSemantics};

fn main() {
    // 1. Run the instrumented conformance suite against the srsLTE-like
    //    stack and extract its finite-state machine (paper Algorithm 1).
    let cfg = AnalysisConfig::default();
    let models = extract_models(Implementation::Srs, &cfg);
    println!(
        "extracted UE model: {} states, {} transitions ({} log records)",
        models.ue.states().count(),
        models.ue.transition_count(),
        models.log_records
    );
    println!("\nGraphviz-like form (paper §VI, model generator input):\n");
    println!("{}", dot::to_dot(&models.ue));

    // 2. Pick a property — S06, TS 24.301's replay-protection requirement.
    let prop = registry()
        .into_iter()
        .find(|p| p.id == "S06")
        .expect("S06 exists");
    println!(
        "property {}: {}\n  \"{}\"",
        prop.id, prop.title, prop.description
    );

    // 3. Compose the threat-instrumented model IMP^u and run the CEGAR
    //    loop (model checker <-> crypto verifier).
    let threat_cfg = prop.slice.threat_config();
    let model = build_threat_model(&models.ue, &models.mme, &threat_cfg);
    let semantics = StepSemantics::new(threat_cfg);
    let Check::Model(formula) = &prop.check else {
        unreachable!("S06 is a model property")
    };
    let outcome = cegar_check(&model, formula, &semantics, 2_000_000, 24).expect("check runs");

    // 4. Report. On srsUE this property is violated: issue I1.
    match outcome.verdict {
        FinalVerdict::Attack(trace) => {
            println!("\nVIOLATED — crypto-feasible counterexample (issue I1):");
            println!("{trace}");
        }
        other => println!("\nverdict: {other:?}"),
    }
}
