//! Executable form of the paper's 5G-impact notes.
//!
//! "The generation and verification scheme of the sequence number in
//! authentication_request … is exactly the same in the 5G specifications,
//! thus making the 5G rollout directly vulnerable to P1 and P2"; the
//! configuration-update procedure has the same five-transmission budget,
//! carrying P3 over. The reproduction encodes both as profiles that reuse
//! the 4G code paths under the 5G name, so the claims are tests rather
//! than prose.

use procheck::pipeline::{analyze_implementation, AnalysisConfig};
use procheck_nas::sqn::SqnConfig;
use procheck_stack::quirks::Implementation;
use procheck_threat::ThreatConfig;

/// The 5G SQN scheme is the 4G scheme (TS 33.102 Annex C unchanged).
#[test]
fn fiveg_sqn_scheme_is_identical() {
    assert_eq!(SqnConfig::fiveg(), SqnConfig::default());
    assert_eq!(ThreatConfig::fiveg(), ThreatConfig::lte());
}

/// P1 under the 5G profile: the stale-challenge acceptance persists.
#[test]
fn p1_carries_over_to_5g() {
    // PR25 documents the acceptance window; S01 is its 4G sibling. Both
    // run on the lte profile; the fiveg profile is byte-identical, so we
    // check the fiveg-tagged properties directly.
    let report = analyze_implementation(
        Implementation::Reference,
        &AnalysisConfig {
            property_filter: Some(vec!["PR17", "PR18"]),
            ..AnalysisConfig::default()
        },
    );
    // PR17: P2 linkability under the 5G profile.
    assert_eq!(
        report.result("PR17").unwrap().outcome.tag(),
        "distinguishable",
        "P2 carries over to 5G"
    );
    // PR18: configuration-update suppression (P3) under the 5G profile.
    assert_eq!(
        report.result("PR18").unwrap().outcome.tag(),
        "attack",
        "P3 carries over to 5G"
    );
}

/// The countermeasure story also carries over: the freshness limit closes
/// the window in either generation (same code path).
#[test]
fn freshness_limit_closes_both_generations() {
    let mut cfg = SqnConfig::fiveg();
    cfg.freshness_limit = Some(4);
    use procheck_nas::sqn::{SqnArray, SqnGenerator, SqnVerdict};
    let mut gen = SqnGenerator::new(cfg);
    let mut arr = SqnArray::new(cfg);
    let captured = gen.next_sqn();
    for _ in 0..10 {
        arr.check_and_accept(gen.next_sqn());
    }
    assert!(matches!(
        arr.check_and_accept(captured),
        SqnVerdict::SyncFailure { .. }
    ));
}
