//! RQ3 — scalability: every Table II property is checkable on both the
//! extracted ProChecker model and the hand-built LTEInspector model, and
//! both complete comfortably within COTS-model-checker budgets.

use procheck::cegar::{cegar_check, FinalVerdict};
use procheck::lteinspector;
use procheck::pipeline::{extract_models, AnalysisConfig};
use procheck_props::{common_properties, Check};
use procheck_smv::checker::explore_stats;
use procheck_stack::quirks::Implementation;
use procheck_threat::{build_threat_model, StepSemantics};
use std::time::Instant;

const STATE_LIMIT: usize = 2_000_000;

#[test]
fn all_common_properties_run_on_both_models() {
    let models = extract_models(Implementation::Reference, &AnalysisConfig::default());
    let baseline_ue = lteinspector::ue_model();
    let baseline_mme = lteinspector::mme_model();

    for p in common_properties() {
        let Check::Model(prop) = &p.check else {
            panic!("{}: Table II properties are model-checkable", p.id)
        };
        let semantics = StepSemantics::new(p.slice.threat_config());
        for (name, ue, mme) in [
            ("prochecker", &models.ue, &models.mme),
            ("lteinspector", &baseline_ue, &baseline_mme),
        ] {
            let model = build_threat_model(ue, mme, &p.slice.threat_config());
            let start = Instant::now();
            let outcome = cegar_check(&model, prop, &semantics, STATE_LIMIT, 24)
                .unwrap_or_else(|e| panic!("{} on {name}: {e}", p.id));
            assert!(
                !matches!(outcome.verdict, FinalVerdict::Inconclusive),
                "{} on {name}: inconclusive",
                p.id
            );
            assert!(
                start.elapsed().as_secs() < 30,
                "{} on {name}: too slow ({:?})",
                p.id,
                start.elapsed()
            );
        }
    }
}

/// The paper's RQ3 point in one number: the extracted model's composed
/// state space stays within bounds for explicit-state checking, despite
/// being an order of magnitude richer than the hand-built one.
#[test]
fn composed_state_spaces_are_tractable() {
    let models = extract_models(Implementation::Reference, &AnalysisConfig::default());
    let p1 = common_properties()
        .into_iter()
        .next()
        .expect("14 properties");
    let threat_cfg = p1.slice.threat_config();

    let pro = build_threat_model(&models.ue, &models.mme, &threat_cfg);
    let pro_stats = explore_stats(&pro, STATE_LIMIT).expect("prochecker model explores");

    let lte = build_threat_model(
        &lteinspector::ue_model(),
        &lteinspector::mme_model(),
        &threat_cfg,
    );
    let lte_stats = explore_stats(&lte, STATE_LIMIT).expect("baseline model explores");

    assert!(
        pro_stats.states > lte_stats.states,
        "extracted model is richer"
    );
    assert!(
        pro_stats.states < STATE_LIMIT,
        "and still tractable: {}",
        pro_stats.states
    );
}
