//! End-to-end pipeline test: the full Table I detection matrix.
//!
//! For each implementation, the pipeline must flag exactly the attacks
//! the paper's Table I marks for it — detected by the model checker on
//! the automatically extracted models, and confirmed on the simulated
//! testbed.

use procheck::pipeline::{analyze_implementation, AnalysisConfig};
use procheck::report::PropertyOutcome;
use procheck_stack::quirks::Implementation;

/// (attack, detecting property, fires on reference, on srs, on oai)
const MATRIX: &[(&str, &str, bool, bool, bool)] = &[
    ("P1", "S01", true, true, true),
    ("P2", "PR07", true, true, true),
    ("P3", "S19", true, true, true),
    ("I1", "S06", false, true, true),
    ("I2", "S12", false, false, true),
    ("I3", "S14", false, true, false),
    ("I4", "S13", false, true, false),
    ("I5", "PR01", false, false, true),
    ("I6", "S03", false, true, true),
];

fn flagged(outcome: &PropertyOutcome) -> bool {
    matches!(
        outcome,
        PropertyOutcome::Attack(_)
            | PropertyOutcome::GoalReachable(_)
            | PropertyOutcome::Distinguishable(_)
    )
}

fn run_matrix(implementation: Implementation, expected_col: usize) {
    let ids: Vec<&'static str> = MATRIX.iter().map(|(_, p, _, _, _)| *p).collect();
    let report = analyze_implementation(
        implementation,
        &AnalysisConfig {
            property_filter: Some(ids),
            ..AnalysisConfig::default()
        },
    );
    for (attack, prop, on_ref, on_srs, on_oai) in MATRIX {
        let expected = match expected_col {
            0 => *on_ref,
            1 => *on_srs,
            _ => *on_oai,
        };
        let r = report
            .result(prop)
            .unwrap_or_else(|| panic!("{prop} missing"));
        assert_eq!(
            flagged(&r.outcome),
            expected,
            "{attack}/{prop} on {}: outcome {} (expected flagged={expected})",
            implementation.name(),
            r.outcome.tag()
        );
    }
}

#[test]
fn table1_matrix_reference() {
    run_matrix(Implementation::Reference, 0);
}

#[test]
fn table1_matrix_srs() {
    run_matrix(Implementation::Srs, 1);
}

#[test]
fn table1_matrix_oai() {
    run_matrix(Implementation::Oai, 2);
}

/// Every counterexample the pipeline reports must be crypto-feasible —
/// its adversarial steps validated by the CPV (zero refinements left
/// unresolved) — and standards-level attacks must be flagged on *all*
/// implementations.
#[test]
fn standards_attacks_are_implementation_independent() {
    let ids = vec!["S01", "S19", "S21", "S22", "S24", "S29"];
    let mut per_impl = Vec::new();
    for imp in [
        Implementation::Reference,
        Implementation::Srs,
        Implementation::Oai,
    ] {
        let report = analyze_implementation(
            imp,
            &AnalysisConfig {
                property_filter: Some(ids.clone()),
                ..AnalysisConfig::default()
            },
        );
        let flagged_ids: Vec<&str> = report
            .results
            .iter()
            .filter(|r| flagged(&r.outcome))
            .map(|r| r.property_id)
            .collect();
        per_impl.push(flagged_ids);
    }
    assert_eq!(per_impl[0], per_impl[1], "reference vs srs");
    assert_eq!(per_impl[1], per_impl[2], "srs vs oai");
    assert_eq!(
        per_impl[0].len(),
        ids.len(),
        "all standards-level attacks fire"
    );
}

/// The paper's summary numbers: 62 properties split 37/25; the reference
/// implementation yields only standards-level findings, the buggy
/// profiles add implementation-specific ones.
#[test]
fn finding_classification_split() {
    let cfg = AnalysisConfig::default();
    let reference = analyze_implementation(Implementation::Reference, &cfg);
    assert_eq!(reference.results.len(), 62);
    assert!(
        reference
            .results
            .iter()
            .filter(|r| r.is_finding())
            .all(|r| !r.is_implementation_finding()),
        "a conformant stack has no implementation-specific findings"
    );

    let srs = analyze_implementation(Implementation::Srs, &cfg);
    let srs_impl: Vec<&str> = srs
        .results
        .iter()
        .filter(|r| r.is_implementation_finding())
        .map(|r| r.property_id)
        .collect();
    assert!(
        !srs_impl.is_empty(),
        "srsUE has implementation findings: {srs_impl:?}"
    );
    assert!(srs_impl.contains(&"S13"), "I4 flagged: {srs_impl:?}");
}
