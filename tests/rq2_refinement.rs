//! RQ2 — the automatically extracted model refines the hand-built
//! LTEInspector model (paper §VII-B), for all three implementations.

use procheck::lteinspector;
use procheck::pipeline::{extract_models, AnalysisConfig};
use procheck_fsm::refinement::{check_refinement, TransitionMapping};
use procheck_fsm::stats::FsmStats;
use procheck_stack::quirks::Implementation;

#[test]
fn extracted_reference_model_refines_lteinspector() {
    let models = extract_models(Implementation::Reference, &AnalysisConfig::default());
    let ue_report = check_refinement(
        &lteinspector::ue_model(),
        &models.ue,
        &lteinspector::ue_state_mapping(),
    );
    assert!(ue_report.refines, "UE: {ue_report:?}");
    assert!(ue_report.conditions_strictly_refined, "Σ_Pro ⊋ Σ_LTE");
    assert!(ue_report.actions_strictly_refined, "Γ_Pro ⊋ Γ_LTE");

    let mme_report = check_refinement(
        &lteinspector::mme_model(),
        &models.mme,
        &lteinspector::mme_state_mapping(),
    );
    assert!(mme_report.refines, "MME: {mme_report:?}");
}

/// All three mapping kinds of the paper's refinement definition occur:
/// direct, condition-refined (Fig 7(i)), and split through new
/// intermediate states (Fig 7(ii)).
#[test]
fn all_three_mapping_kinds_exercised() {
    let models = extract_models(Implementation::Reference, &AnalysisConfig::default());
    let report = check_refinement(
        &lteinspector::ue_model(),
        &models.ue,
        &lteinspector::ue_state_mapping(),
    );
    let (direct, refined, split, unmapped) = report.mapping_histogram();
    assert!(direct >= 1, "direct mappings: {direct}");
    assert!(refined >= 1, "condition-refined mappings: {refined}");
    assert!(split >= 1, "split mappings: {split}");
    assert_eq!(unmapped, 0);

    // Fig 7(i): the SMC transition maps with a strictly stronger,
    // payload-derived condition somewhere along its split path — and the
    // split goes through an extracted sub-state.
    let smc_split = report
        .transition_mappings
        .iter()
        .find_map(|(t, m)| {
            (t.condition
                .iter()
                .any(|c| c.name() == "security_mode_command"))
            .then_some(m)
        })
        .expect("SMC transition is mapped");
    match smc_split {
        TransitionMapping::Split { via } => {
            assert!(via
                .iter()
                .any(|s| s.as_str().contains("emm_registered_initiated")));
        }
        other => panic!("expected the SMC transition to split, got {other:?}"),
    }
}

/// The extracted model is richer on every axis the paper compares
/// (states via sub-states, conditions via payload predicates, data-driven
/// constraints like sequence numbers).
#[test]
fn extracted_model_is_strictly_richer() {
    for imp in [
        Implementation::Reference,
        Implementation::Srs,
        Implementation::Oai,
    ] {
        let models = extract_models(imp, &AnalysisConfig::default());
        let pro = FsmStats::of(&models.ue);
        let lte = FsmStats::of(&lteinspector::ue_model());
        assert!(pro.states > lte.states, "{imp:?}: more states (sub-states)");
        assert!(pro.conditions > lte.conditions, "{imp:?}: more conditions");
        assert!(
            pro.predicate_conditions > 0,
            "{imp:?}: payload predicates present"
        );
        assert_eq!(lte.predicate_conditions, 0, "hand-built model has none");
        // Sequence-number constraints (count_delta) are among them.
        assert!(
            models.ue.conditions().any(|c| c.name() == "count_delta"),
            "{imp:?}: sequence-number constraints extracted"
        );
    }
}

/// Buggy implementations still refine the abstract model — their extra
/// (vulnerable) transitions only add behaviour; the paper's refinement
/// definition is about covering the hand-built model.
#[test]
fn buggy_models_also_refine() {
    for imp in [Implementation::Srs, Implementation::Oai] {
        let models = extract_models(imp, &AnalysisConfig::default());
        let report = check_refinement(
            &lteinspector::ue_model(),
            &models.ue,
            &lteinspector::ue_state_mapping(),
        );
        assert!(report.refines, "{imp:?}: {report:?}");
    }
}
