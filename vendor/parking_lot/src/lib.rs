//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex`/`RwLock` behind parking_lot's poison-free
//! API (`lock()`/`read()`/`write()` return guards directly). A poisoned
//! std lock means a panic mid-critical-section; propagating that panic
//! to the next locker matches parking_lot's observable behavior closely
//! enough for this workspace's logging buffers.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|_| panic!("lock poisoned by a panicking holder"))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|_| panic!("lock poisoned by a panicking holder"))
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(|_| panic!("lock poisoned by a panicking holder"))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(|_| panic!("lock poisoned by a panicking holder"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
