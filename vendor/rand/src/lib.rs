//! Offline stand-in for `rand` 0.8.
//!
//! The workspace only ever uses seeded, reproducible generation
//! (`StdRng::seed_from_u64` + `gen`/`gen_range`/`gen_bool`), so a
//! SplitMix64 generator behind the same API subset is a faithful
//! replacement: deterministic per seed, uniform enough for test-case
//! generation and exponential inter-arrival sampling. The exact value
//! sequence differs from crates-io `StdRng` (ChaCha12), which no test
//! may depend on — they assert structural properties, not literal
//! sequences.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic SplitMix64 generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        pub(crate) fn next_raw(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Seeding subset of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng {
            state: seed ^ 0x51F0_6E85_36A8_CB0D,
        }
    }
}

/// Types samplable uniformly over their whole domain (`Rng::gen`).
pub trait Standard {
    fn from_u64(raw: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_u64(raw: u64) -> Self {
                raw as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_u64(raw: u64) -> Self {
        raw & 1 == 1
    }
}

impl Standard for f64 {
    fn from_u64(raw: u64) -> Self {
        // 53 mantissa bits mapped to [0, 1).
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange {
    type Output;
    fn sample(self, next: &mut dyn FnMut() -> u64) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (next() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (next() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, next: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::from_u64(next()) * (self.end - self.start)
    }
}

/// The `rand::Rng` API subset the workspace uses.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        let mut next = || self.next_u64();
        range.sample(&mut next)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_u64(self.next_u64()) < p
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        let mut c = rngs::StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(1..=4);
            assert!((1..=4).contains(&x));
            let y = rng.gen_range(0usize..13);
            assert!(y < 13);
            let f = rng.gen_range(1e-9..1.0);
            assert!((1e-9..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
