//! Offline stand-in for `criterion`.
//!
//! The workspace must build air-gapped (see `vendor/README.md`), so the
//! crates-io criterion is replaced with a minimal wall-clock harness
//! behind the same API subset the benches use: `benchmark_group` with
//! chainable `sample_size`/`warm_up_time`/`measurement_time`/
//! `throughput`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! There is no statistical analysis or HTML report: each benchmark runs
//! a short calibration pass, scales the iteration count to roughly the
//! configured measurement time, and prints the mean time per iteration.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle, created by `criterion_group!`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(1),
            throughput: None,
        }
    }
}

/// Per-element/byte normalization hint; recorded and echoed, not used
/// for statistics.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            mean: Duration::ZERO,
            iterations: 0,
        };
        f(&mut b);
        let per_elem = match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if n > 0 => {
                format!("  ({:?}/elem over {n})", b.mean / n.max(1) as u32)
            }
            _ => String::new(),
        };
        eprintln!(
            "  {}/{id}: {:?}/iter over {} iterations{per_elem}",
            self.name, b.mean, b.iterations
        );
    }

    pub fn finish(&mut self) {}
}

/// Handed to the benchmark closure; `iter` runs the routine and records
/// the mean wall-clock time per call.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    mean: Duration,
    iterations: u64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up doubles as calibration for the per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let est = warm_start
            .elapsed()
            .checked_div(warm_iters as u32)
            .unwrap_or_default();
        let budget_iters = if est.is_zero() {
            self.sample_size as u64 * 1_000
        } else {
            (self.measurement_time.as_nanos() / est.as_nanos().max(1)).max(1) as u64
        };
        let iterations = budget_iters.clamp(self.sample_size as u64, 5_000_000);
        let start = Instant::now();
        for _ in 0..iterations {
            black_box(routine());
        }
        let total = start.elapsed();
        self.mean = total.checked_div(iterations as u32).unwrap_or_default();
        self.iterations = iterations;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, n| {
            b.iter(|| *n * 2)
        });
        group.finish();
        assert!(calls > 0);
    }
}
