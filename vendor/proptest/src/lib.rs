//! Offline stand-in for `proptest`.
//!
//! This workspace must build air-gapped (see `vendor/README.md`), so the
//! crates-io proptest is replaced with a minimal generate-and-check
//! engine behind the same API subset:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive`, `boxed`;
//! * strategies for integer ranges, tuples, [`strategy::Just`],
//!   `&str`-as-regex (a small class/repetition subset), and
//!   [`arbitrary::any`] over primitives and [`sample::Index`];
//! * [`collection::vec`], [`collection::btree_set`], [`option::of`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`]-family macros.
//!
//! Differences from real proptest: generation is seeded purely from the
//! test's module path (fully deterministic run-to-run, no
//! `PROPTEST_CASES` env override), and failing cases are **not shrunk**
//! — the failing input is printed as generated. Test sources compile
//! unchanged against either implementation.

pub mod test_runner {
    /// Deterministic SplitMix64 stream used for all generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x6C62_272E_07BB_0142,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }

    /// FNV-1a over the test's path — the per-test deterministic seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        h
    }

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure — aborts the whole test.
        Fail(String),
        /// `prop_assume!` rejection — the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A value generator. Unlike real proptest there is no shrinking
    /// tree — `generate` returns the value directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let rc = Rc::new(self);
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| rc.generate(rng)))
        }

        /// Depth-bounded recursive strategy: each level flips between the
        /// leaf strategy and one application of `branch` to the previous
        /// level, so generated values never exceed `depth` nesting.
        /// The `_desired_size`/`_expected_branch` hints of real proptest
        /// are accepted and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut level = leaf.clone();
            for _ in 0..depth {
                let wider = branch(level).boxed();
                let l = leaf.clone();
                level = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                    if rng.next_u64() & 1 == 0 {
                        l.generate(rng)
                    } else {
                        wider.generate(rng)
                    }
                }));
            }
            level
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy over empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "strategy over empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// `&str` as a regex strategy, supporting the subset the workspace
    /// uses: literal characters, `[a-z0-9_]`-style classes, and `{m}` /
    /// `{m,n}` repetitions.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }
}

pub mod string {
    use crate::test_runner::TestRng;

    enum Atom {
        Literal(char),
        Class(Vec<char>),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = if c == '[' {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let c = chars.next().unwrap_or_else(|| {
                        panic!("unterminated class in regex strategy `{pattern}`")
                    });
                    match c {
                        ']' => break,
                        '-' if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().expect("range start");
                            let hi = chars.next().expect("range end");
                            for x in lo..=hi {
                                set.push(x);
                            }
                        }
                        _ => {
                            if let Some(p) = prev.replace(c) {
                                set.push(p);
                            }
                        }
                    }
                }
                if let Some(p) = prev {
                    set.push(p);
                }
                assert!(!set.is_empty(), "empty class in regex strategy `{pattern}`");
                Atom::Class(set)
            } else {
                Atom::Literal(c)
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut bounds = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    bounds.push(c);
                }
                match bounds.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("repeat lower bound"),
                        n.trim().parse().expect("repeat upper bound"),
                    ),
                    None => {
                        let n = bounds.trim().parse().expect("repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    /// Generates one string matching the pattern subset.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let count = piece.min + rng.below(piece.max - piece.min + 1);
            for _ in 0..count {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(set) => out.push(set[rng.below(set.len())]),
                }
            }
        }
        out
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The `any::<T>()` strategy.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// A collection-size-agnostic index, resolved against a length with
    /// [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Maps this abstract index into `0..size`; `size` must be
        /// non-zero.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index(0)");
            (self.0 % size as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Collection-size argument, mirroring proptest's `Into<SizeRange>`
    /// bound: implemented only for `usize` shapes so bare literals like
    /// `1..8` infer as `usize`.
    pub trait SizeBound {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeBound for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeBound for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "collection size from empty range");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl SizeBound for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "collection size from empty range");
            start + rng.below(end - start + 1)
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        length: L,
    }

    impl<S: Strategy, L: SizeBound> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.length.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec` — a vector whose length is drawn from
    /// the given size range.
    pub fn vec<S: Strategy, L: SizeBound>(element: S, length: L) -> VecStrategy<S, L> {
        VecStrategy { element, length }
    }

    pub struct BTreeSetStrategy<S, L> {
        element: S,
        length: L,
    }

    impl<S, L> Strategy for BTreeSetStrategy<S, L>
    where
        S: Strategy,
        S::Value: Ord,
        L: SizeBound,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.length.pick(rng);
            let mut out = BTreeSet::new();
            // Bounded retries: duplicates may keep the set below `n`,
            // mirroring proptest's best-effort sizing.
            for _ in 0..n * 4 {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    /// `proptest::collection::btree_set`.
    pub fn btree_set<S, L>(element: S, length: L) -> BTreeSetStrategy<S, L>
    where
        S: Strategy,
        S::Value: Ord,
        L: SizeBound,
    {
        BTreeSetStrategy { element, length }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // 3:1 Some-to-None, matching proptest's Some-biased default.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `proptest::option::of`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), l, r
                );
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left), stringify!($right), l
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "{}\n  both: {:?}",
                    format!($($fmt)+), l
                );
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::new(
                    $crate::test_runner::seed_for(
                        concat!(module_path!(), "::", stringify!($name)),
                    ),
                );
                let mut passed = 0u32;
                let mut rejected = 0u32;
                while passed < config.cases {
                    let values = (
                        $($crate::strategy::Strategy::generate(&($strat), &mut rng),)+
                    );
                    let described = format!("{:?}", &values);
                    let outcome = (move || -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        let ($($pat,)+) = values;
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(why),
                        ) => {
                            rejected += 1;
                            assert!(
                                rejected < 10_000,
                                "proptest `{}`: too many rejected cases ({why})",
                                stringify!($name),
                            );
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest `{}` failed after {} passing case(s): {}\ninput: {}",
                                stringify!($name), passed, msg, described,
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = crate::test_runner::TestRng::new(1);
        for _ in 0..200 {
            let s = crate::string::generate("[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()), "{s}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s}");
            let t = crate::string::generate("[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!t.is_empty() && t.len() <= 9, "{t}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 5u64..9), v in prop::collection::vec(1i32..4, 2..5)) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (1..4).contains(x)));
        }

        #[test]
        fn oneof_union_and_just(x in prop_oneof![Just(1u8), Just(7u8), 20u8..30]) {
            prop_assert!(x == 1 || x == 7 || (20..30).contains(&x));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
