//! Offline stand-in for `serde`.
//!
//! This workspace must build in a fully air-gapped container (see
//! `vendor/README.md`), so the crates-io `serde` is replaced by this
//! minimal vocabulary crate. The workspace only ever *derives*
//! `Serialize`/`Deserialize` — it never serializes through a data
//! format — so marker traits are sufficient. Swapping the real serde
//! back in is a one-line change in the workspace `Cargo.toml`.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
