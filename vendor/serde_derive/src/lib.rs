//! Offline stand-in for `serde_derive`.
//!
//! The sibling `vendor/serde` defines `Serialize`/`Deserialize` as marker
//! traits, so the derives only need to name the type and emit empty
//! impls. `#[serde(...)]` helper attributes are accepted and ignored.

use proc_macro::{TokenStream, TokenTree};

/// Finds the identifier following the `struct`/`enum`/`union` keyword.
fn type_name(input: &TokenStream) -> String {
    let mut iter = input.clone().into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde_derive stub: could not find a type name in the derive input");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
